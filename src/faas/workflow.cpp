#include "faas/workflow.hpp"

#include <stdexcept>

namespace prebake::faas {

void WorkflowEngine::register_workflow(WorkflowSpec spec) {
  if (spec.stages.empty())
    throw std::invalid_argument{"workflow: no stages: " + spec.name};
  for (const std::string& stage : spec.stages)
    if (!platform_->registry().has(stage))
      throw std::out_of_range{"workflow: stage not deployed: " + stage};
  workflows_[spec.name] = std::move(spec);
}

const WorkflowSpec& WorkflowEngine::get(const std::string& name) const {
  const auto it = workflows_.find(name);
  if (it == workflows_.end())
    throw std::out_of_range{"workflow: unknown workflow " + name};
  return it->second;
}

void WorkflowEngine::run(const std::string& name, funcs::Request input,
                         WorkflowCallback callback) {
  const WorkflowSpec& spec = get(name);
  auto metrics = std::make_shared<WorkflowMetrics>();
  metrics->workflow = name;
  run_stage(spec, 0, std::move(input), platform_->kernel().sim().now(),
            std::move(metrics), std::move(callback));
}

void WorkflowEngine::run_stage(const WorkflowSpec& spec, std::size_t index,
                               funcs::Request input, sim::TimePoint started,
                               std::shared_ptr<WorkflowMetrics> metrics,
                               WorkflowCallback callback) {
  platform_->invoke(
      spec.stages[index], std::move(input),
      [this, &spec, index, started, metrics,
       callback = std::move(callback)](const funcs::Response& res,
                                       const RequestMetrics& m) mutable {
        metrics->stages.push_back(m);
        if (m.cold_start) ++metrics->cold_starts;
        const bool last = index + 1 == spec.stages.size();
        if (last || !res.ok()) {
          metrics->total = platform_->kernel().sim().now() - started;
          callback(res, *metrics);
          return;
        }
        funcs::Request next;
        next.path = "/invoke";
        next.body = res.body;  // dataflow: stage output feeds the next stage
        run_stage(spec, index + 1, std::move(next), started, metrics,
                  std::move(callback));
      });
}

}  // namespace prebake::faas
