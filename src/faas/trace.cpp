#include "faas/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <memory>
#include <numbers>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "faas/trace_source.hpp"

namespace prebake::faas {

std::vector<TraceEvent> parse_trace_csv(const std::string& text) {
  std::vector<TraceEvent> events;
  std::size_t line_no = 0;
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t") == std::string::npos) continue;

    const std::size_t comma = line.find(',');
    if (comma == std::string::npos)
      throw std::invalid_argument{"trace line " + std::to_string(line_no) +
                                  ": missing comma"};
    const std::string_view ms_text{line.data(), comma};
    double ms = 0.0;
    try {
      std::size_t used = 0;
      ms = std::stod(std::string{ms_text}, &used);
      if (used != ms_text.size()) throw std::invalid_argument{""};
    } catch (const std::exception&) {
      throw std::invalid_argument{"trace line " + std::to_string(line_no) +
                                  ": bad offset '" + std::string{ms_text} + "'"};
    }
    if (ms < 0.0)
      throw std::invalid_argument{"trace line " + std::to_string(line_no) +
                                  ": negative offset"};
    std::string function = line.substr(comma + 1);
    const std::size_t b = function.find_first_not_of(" \t");
    const std::size_t e = function.find_last_not_of(" \t");
    if (b == std::string::npos)
      throw std::invalid_argument{"trace line " + std::to_string(line_no) +
                                  ": empty function name"};
    function = function.substr(b, e - b + 1);
    events.push_back(TraceEvent{sim::Duration::millis_f(ms), std::move(function)});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  return events;
}

std::string format_trace_csv(std::span<const TraceEvent> events) {
  std::ostringstream out;
  out << "# offset_ms,function\n";
  for (const TraceEvent& e : events) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", e.at.to_millis());
    out << buf << ',' << e.function << '\n';
  }
  return out.str();
}

std::vector<TraceEvent> generate_poisson_trace(const std::string& function,
                                               double rate_hz,
                                               sim::Duration duration,
                                               std::uint64_t seed) {
  if (rate_hz <= 0.0)
    throw std::invalid_argument{"generate_poisson_trace: rate must be > 0 "
                                "(rate_hz=" + std::to_string(rate_hz) + ")"};
  // Materializing wrapper over the streaming source; both draw the
  // identical RNG sequence, so a streamed and a materialized trace from
  // the same seed are the same trace (pinned by the TraceStream suite).
  PoissonTraceSource source{function, rate_hz, duration, seed};
  std::vector<TraceEvent> events;
  while (std::optional<TraceEvent> e = source.next())
    events.push_back(std::move(*e));
  return events;
}

std::vector<TraceEvent> generate_diurnal_trace(const std::string& function,
                                               double base_rate_hz,
                                               double peak_rate_hz,
                                               sim::Duration period,
                                               sim::Duration duration,
                                               std::uint64_t seed) {
  // A peak below the base flips the thinning acceptance ratio above 1 and
  // silently distorts the generated rate; report both offending values.
  if (base_rate_hz < 0.0 || peak_rate_hz < base_rate_hz)
    throw std::invalid_argument{
        "generate_diurnal_trace: need 0 <= base_rate_hz <= peak_rate_hz "
        "(base_rate_hz=" + std::to_string(base_rate_hz) +
        ", peak_rate_hz=" + std::to_string(peak_rate_hz) + ")"};
  if (period <= sim::Duration{})
    throw std::invalid_argument{"generate_diurnal_trace: period must be > 0"};
  DiurnalTraceSource source{function, base_rate_hz, peak_rate_hz,
                            period,   duration,     seed};
  std::vector<TraceEvent> events;
  while (std::optional<TraceEvent> e = source.next())
    events.push_back(std::move(*e));
  return events;
}

TraceReplayResult replay_trace(Platform& platform,
                               std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events)
    if (!platform.registry().has(e.function))
      throw std::out_of_range{"replay_trace: function not deployed: " +
                              e.function};

  struct State {
    TraceReplayResult result;
    std::size_t answered = 0;
  };
  auto state = std::make_shared<State>();
  sim::Simulation& sim = platform.kernel().sim();
  const sim::TimePoint start = sim.now();

  for (const TraceEvent& e : events) {
    sim.schedule_at(start + e.at, [state, &platform, function = e.function] {
      platform.invoke(function, funcs::sample_request(
                                    platform.registry().get(function).spec.handler_id),
                      [state](const funcs::Response& res, const RequestMetrics& m) {
                        ++state->answered;
                        if (res.ok()) {
                          state->result.metrics.push_back(m);
                          ++state->result.responses_ok;
                          // Served, but the cold start degraded to the
                          // Vanilla fallback — not a rejection, reported on
                          // its own axis.
                          if (m.fallback) ++state->result.responses_fallback;
                        } else {
                          ++state->result.responses_rejected;
                        }
                      });
    });
  }
  while (state->answered < events.size() && sim.step()) {
  }
  state->result.makespan = sim.now() - start;
  return std::move(state->result);
}

}  // namespace prebake::faas
