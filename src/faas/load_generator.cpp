#include "faas/load_generator.hpp"

#include <memory>

namespace prebake::faas {

namespace {

struct LoopState {
  Platform* platform;
  LoadGenConfig config;
  funcs::Request request;
  LoadGenResult result;
  int sent = 0;
  sim::TimePoint start;
};

void send_next(const std::shared_ptr<LoopState>& state) {
  if (state->sent >= state->config.requests) return;
  ++state->sent;
  state->platform->invoke(
      state->config.function, state->request,
      [state](const funcs::Response& res, const RequestMetrics& metrics) {
        state->result.metrics.push_back(metrics);
        state->result.responses.push_back(res);
        if (state->sent < state->config.requests) {
          state->platform->kernel().sim().schedule_in(
              state->config.think_time, [state] { send_next(state); });
        }
      });
}

}  // namespace

LoadGenResult run_load(Platform& platform, const LoadGenConfig& config) {
  auto state = std::make_shared<LoopState>();
  state->platform = &platform;
  state->config = config;
  state->request =
      funcs::sample_request(platform.registry().get(config.function).spec.handler_id);
  state->start = platform.kernel().sim().now();

  platform.kernel().sim().schedule_in(sim::Duration::nanos(0),
                                      [state] { send_next(state); });
  // Step the simulation only until every response has arrived; later events
  // (idle-timeout reclaims) stay pending for the caller to run if desired.
  while (state->result.responses.size() <
             static_cast<std::size_t>(config.requests) &&
         platform.kernel().sim().step()) {
  }

  state->result.makespan = platform.kernel().sim().now() - state->start;
  return std::move(state->result);
}

OpenLoopResult run_open_loop(Platform& platform, const OpenLoopConfig& config) {
  struct State {
    OpenLoopResult result;
    std::uint64_t expected = 0;
    std::uint64_t answered = 0;
  };
  auto state = std::make_shared<State>();
  sim::Simulation& sim = platform.kernel().sim();
  sim::Rng rng{config.seed};
  const funcs::Request req =
      funcs::sample_request(platform.registry().get(config.function).spec.handler_id);
  const sim::TimePoint start = sim.now();
  const sim::TimePoint end = start + config.duration;

  // Pre-draw the Poisson arrival times.
  sim::TimePoint at = start;
  while (true) {
    at += sim::Duration::seconds_f(rng.exponential(1.0 / config.rate_hz));
    if (at >= end) break;
    ++state->expected;
    sim.schedule_at(at, [state, &platform, config, req] {
      platform.invoke(config.function, req,
                      [state](const funcs::Response& res, const RequestMetrics& m) {
                        ++state->answered;
                        if (res.ok()) {
                          state->result.metrics.push_back(m);
                          ++state->result.responses_ok;
                        } else {
                          ++state->result.responses_rejected;
                        }
                      });
    });
  }

  // Memory sampler: rectangle-rule integral of the platform's memory use.
  struct Sampler {
    Platform* platform;
    State* state;
    sim::Duration period;
    sim::TimePoint end;
    void operator()() const {
      state->result.mem_byte_seconds +=
          static_cast<double>(platform->resources().total_mem_used()) *
          period.to_seconds();
      if (platform->kernel().sim().now() + period <= end)
        platform->kernel().sim().schedule_in(period, *this);
    }
  };
  sim.schedule_in(config.mem_sample_period,
                  Sampler{&platform, state.get(), config.mem_sample_period, end});

  // Run until every arrival has been answered and the window has elapsed.
  while ((state->answered < state->expected || sim.now() < end) && sim.step()) {
  }
  state->result.makespan = sim.now() - start;
  return std::move(state->result);
}

}  // namespace prebake::faas
