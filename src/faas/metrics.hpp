// Bounded request-metrics aggregation for heavy-traffic runs.
//
// The platform's full request log grows one RequestMetrics per invocation —
// millions of invocations OOM-grow the vector. When
// PlatformConfig::aggregate_request_log is set the platform records each
// request into this fixed-size structure instead: counters plus log-spaced
// latency histograms that answer percentile queries with bounded error
// (~5.9% per bucket step at 40 buckets/decade).
#pragma once

#include <array>
#include <cstdint>

namespace prebake::faas {

class LatencyHistogram {
 public:
  // Log-spaced buckets covering 1 us .. ~10^4 s of milliseconds.
  static constexpr int kBucketsPerDecade = 40;
  static constexpr double kMinMs = 1e-3;
  static constexpr int kDecades = 10;
  static constexpr int kBuckets = kBucketsPerDecade * kDecades + 2;

  void record(double ms);

  std::uint64_t count() const { return count_; }
  double sum_ms() const { return sum_ms_; }
  double mean_ms() const { return count_ == 0 ? 0.0 : sum_ms_ / count_; }
  double min_ms() const { return count_ == 0 ? 0.0 : min_ms_; }
  double max_ms() const { return count_ == 0 ? 0.0 : max_ms_; }

  // Quantile `p` in [0, 1] from the histogram (bucket lower edge; exact
  // recorded min/max at the extremes). 0 when empty.
  double percentile(double p) const;

 private:
  static int bucket_of(double ms);
  static double bucket_floor_ms(int bucket);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ms_ = 0.0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
};

// Aggregated view of the request stream, one instance per platform. Holds
// everything the full log is queried for in benches (counts, cold-start
// share, latency percentiles) at O(1) memory.
struct RequestAggregate {
  std::uint64_t count = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t retried = 0;        // requests requeued at least once
  std::uint64_t total_retries = 0;  // sum of per-request retry counts
  LatencyHistogram total_ms;
  LatencyHistogram service_ms;
  LatencyHistogram queue_wait_ms;
  LatencyHistogram cold_startup_ms;  // startup of cold-start requests only
};

}  // namespace prebake::faas
