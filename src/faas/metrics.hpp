// Bounded request-metrics aggregation for heavy-traffic runs.
//
// The platform's full request log grows one RequestMetrics per invocation —
// millions of invocations OOM-grow the vector. When
// PlatformConfig::aggregate_request_log is set the platform records each
// request into this fixed-size structure instead: counters plus log-spaced
// latency histograms that answer percentile queries with bounded error
// (~5.9% per bucket step at 40 buckets/decade).
//
// The histogram implementation lives in obs::LogHistogram so the metrics
// registry and this aggregate share one bucketing; the alias keeps the
// original faas spelling working.
#pragma once

#include <cstdint>

#include "obs/histogram.hpp"

namespace prebake::faas {

using LatencyHistogram = obs::LogHistogram;

// Aggregated view of the request stream, one instance per platform. Holds
// everything the full log is queried for in benches (counts, cold-start
// share, latency percentiles) at O(1) memory.
struct RequestAggregate {
  std::uint64_t count = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t retried = 0;        // requests requeued at least once
  std::uint64_t total_retries = 0;  // sum of per-request retry counts
  LatencyHistogram total_ms;
  LatencyHistogram service_ms;
  LatencyHistogram queue_wait_ms;
  LatencyHistogram cold_startup_ms;  // startup of cold-start requests only
};

}  // namespace prebake::faas
