// Bounded request-metrics aggregation for heavy-traffic runs.
//
// The platform's full request log grows one RequestMetrics per invocation —
// millions of invocations OOM-grow the vector. When
// PlatformConfig::aggregate_request_log is set the platform records each
// request into this fixed-size structure instead: counters plus log-spaced
// latency histograms that answer percentile queries with bounded error
// (~5.9% per bucket step at 40 buckets/decade).
//
// The histogram implementation lives in obs::LogHistogram so the metrics
// registry and this aggregate share one bucketing; the alias keeps the
// original faas spelling working.
#pragma once

#include <cstdint>

#include "obs/histogram.hpp"

namespace prebake::faas {

using LatencyHistogram = obs::LogHistogram;

// Aggregated view of the request stream, one instance per platform. Holds
// everything the full log is queried for in benches (counts, cold-start
// share, latency percentiles) at O(1) memory.
struct RequestAggregate {
  std::uint64_t count = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t retried = 0;        // requests requeued at least once
  std::uint64_t total_retries = 0;  // sum of per-request retry counts
  // Cold starts served by the Vanilla fallback path (failed restore or
  // quarantined snapshot) — answered, but without the prebaked latency.
  // Queue rejections are NOT in here; they never reach a replica and are
  // counted by PlatformStats::rejected / TraceReplayResult.
  std::uint64_t fallback_serves = 0;
  LatencyHistogram total_ms;
  LatencyHistogram service_ms;
  LatencyHistogram queue_wait_ms;
  LatencyHistogram cold_startup_ms;  // startup of cold-start requests only
};

// Per-function slice of the request stream: counters and latency *sums*
// only, no histograms — 2000 deployed functions cost 2000 of these, ~100
// bytes each, where per-function histograms would cost ~50 KiB each. The
// streaming replay keeps one per function (O(functions), not O(requests)).
struct FunctionAggregate {
  std::uint64_t requests = 0;     // answered requests (ok or rejected)
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;     // queue-rejected (503), never served
  std::uint64_t cold_starts = 0;
  std::uint64_t fallback_serves = 0;
  double total_ms_sum = 0.0;      // over served requests
  double total_ms_max = 0.0;
  double queue_wait_ms_sum = 0.0;
  double cold_startup_ms_sum = 0.0;  // over cold starts
};

}  // namespace prebake::faas
