// Pull-based streaming trace sources and the memory-bounded replay driver
// (DESIGN.md §6h).
//
// The original generators materialize a std::vector<TraceEvent> — fine for
// thousands of events, hopeless for the 10^7-request production-scale
// workloads the policy study replays. A TraceSource yields events one at a
// time in non-decreasing time order; the streaming replay keeps exactly one
// un-fired arrival scheduled, so engine memory stays O(active replicas +
// functions) regardless of trace length. The legacy generate_*_trace
// functions are thin wrappers that drain the matching source, drawing the
// identical RNG sequence.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "faas/metrics.hpp"
#include "faas/platform.hpp"
#include "faas/trace.hpp"
#include "sim/rng.hpp"

namespace prebake::faas {

// A stream of trace events in non-decreasing `at` order. next() returns
// nullopt once the stream is exhausted (and keeps returning it).
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual std::optional<TraceEvent> next() = 0;
};

// Adapter over a materialized trace (parsed CSV, hand-built fixtures).
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}
  std::optional<TraceEvent> next() override {
    if (idx_ >= events_.size()) return std::nullopt;
    return events_[idx_++];
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t idx_ = 0;
};

// Homogeneous Poisson arrivals at `rate_hz` over `duration`.
class PoissonTraceSource final : public TraceSource {
 public:
  PoissonTraceSource(std::string function, double rate_hz,
                     sim::Duration duration, std::uint64_t seed);
  std::optional<TraceEvent> next() override;

 private:
  std::string function_;
  double rate_hz_;
  sim::Duration duration_;
  sim::Duration at_;
  sim::Rng rng_;
  bool done_ = false;
};

// Diurnal (sinusoidal-rate) arrivals via Lewis-Shedler thinning; the rate
// swings between base_rate_hz and peak_rate_hz with the given period,
// trough at t=0.
class DiurnalTraceSource final : public TraceSource {
 public:
  DiurnalTraceSource(std::string function, double base_rate_hz,
                     double peak_rate_hz, sim::Duration period,
                     sim::Duration duration, std::uint64_t seed);
  std::optional<TraceEvent> next() override;

 private:
  std::string function_;
  double base_rate_hz_;
  double peak_rate_hz_;
  sim::Duration period_;
  sim::Duration duration_;
  sim::Duration at_;
  sim::Rng rng_;
  bool done_ = false;
};

// Zipf(s) sampler over ranks [0, n): P(i) proportional to 1/(i+1)^s.
// s = 0 degrades to uniform. Sampling is one uniform draw plus a binary
// search over the precomputed CDF — deterministic for a fixed Rng stream.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s);
  std::uint32_t sample(sim::Rng& rng) const;
  // P(rank); exposed for analytics (expected per-function rates).
  double probability(std::uint32_t rank) const;
  std::uint32_t size() const { return static_cast<std::uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // inclusive prefix sums, back() == 1.0
};

// Multiplexed fleet workload: aggregate arrivals (Poisson, optionally
// diurnal-thinned) assigned to one of `functions` names by Zipf(s)
// popularity rank. Function names are "<prefix><rank>"; rank 0 is hottest.
struct ZipfTraceConfig {
  std::uint32_t functions = 100;
  double zipf_s = 1.0;
  double rate_hz = 100.0;  // aggregate arrival rate (diurnal base when peak set)
  // Stop conditions: events after `duration` or beyond `max_events` are not
  // produced. max_events = 0 means duration-bounded only.
  sim::Duration duration = sim::Duration::seconds(60);
  std::uint64_t max_events = 0;
  // peak_rate_hz > rate_hz enables a diurnal swing between the two with
  // `period`; 0 keeps the rate flat.
  double peak_rate_hz = 0.0;
  sim::Duration period = sim::Duration::seconds(3600);
  std::string name_prefix = "fn-";
  std::uint64_t seed = 1;
};

class ZipfTraceSource final : public TraceSource {
 public:
  explicit ZipfTraceSource(ZipfTraceConfig config);
  std::optional<TraceEvent> next() override;

  // All names the stream can emit, indexed by Zipf rank (hot first).
  const std::vector<std::string>& function_names() const { return names_; }
  const ZipfSampler& sampler() const { return sampler_; }

 private:
  ZipfTraceConfig config_;
  ZipfSampler sampler_;
  std::vector<std::string> names_;
  sim::Duration at_;
  std::uint64_t emitted_ = 0;
  sim::Rng rng_;
  bool done_ = false;
};

// --- streaming replay ------------------------------------------------------

struct StreamReplayOptions {
  // Grow the full per-request metrics vector (O(requests) memory). Off by
  // default: the aggregate + per-function views below are the bounded path.
  bool keep_request_metrics = false;
  // Sample engine/platform occupancy every this many executed events for
  // the peak_* gauges (0 disables sampling).
  std::uint64_t sample_every = 1024;
};

struct StreamReplayResult {
  std::uint64_t events = 0;        // arrivals issued to the platform
  std::uint64_t responses_ok = 0;
  // Queue-rejected (503 "no capacity") — never reached a replica.
  std::uint64_t responses_rejected = 0;
  // Served OK but the cold start behind them fell back to the Vanilla path
  // (failed restore / quarantine). Disjoint axis from rejections.
  std::uint64_t responses_fallback = 0;
  sim::Duration makespan;
  // Bounded views of the request stream: fixed-size histogram aggregate
  // plus one small per-function record (O(functions)).
  RequestAggregate aggregate;
  std::map<std::string, FunctionAggregate> per_function;
  // Engine/platform occupancy peaks sampled during the run — the
  // memory-bound witnesses (pending events and replicas must track the
  // active set, not the trace length).
  std::size_t peak_pending_events = 0;
  std::size_t peak_replicas = 0;
  // Populated only when keep_request_metrics is set.
  std::vector<RequestMetrics> metrics;
};

// Drive a streaming trace through the platform: one arrival is scheduled
// ahead at any time, each firing schedules its successor. Runs the
// simulation until every issued request is answered. Functions must be
// deployed before their first arrival (invoke throws out_of_range
// otherwise, surfacing from the offending simulation step).
StreamReplayResult replay_trace_stream(Platform& platform, TraceSource& source,
                                       const StreamReplayOptions& options = {});

}  // namespace prebake::faas
