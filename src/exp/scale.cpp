#include "exp/scale.hpp"

#include <algorithm>
#include <stdexcept>

#include "exp/calibration.hpp"
#include "exp/run.hpp"
#include "faas/platform.hpp"
#include "faas/trace_source.hpp"
#include "os/kernel.hpp"
#include "rt/classfile.hpp"

namespace prebake::exp {

const char* keep_alive_policy_name(KeepAlivePolicy policy) {
  switch (policy) {
    case KeepAlivePolicy::kPrebaked: return "prebaked";
    case KeepAlivePolicy::kKeepAlive: return "keepalive";
    case KeepAlivePolicy::kWarmPool: return "warmpool";
    case KeepAlivePolicy::kCowClone: return "cowclone";
  }
  throw std::invalid_argument{"keep_alive_policy_name: bad policy"};
}

rt::FunctionSpec scale_function_spec(std::uint32_t rank,
                                     const std::string& name_prefix) {
  rt::FunctionSpec s;
  s.name = name_prefix + std::to_string(rank);
  s.handler_id = "noop";
  // One shared framework class set across the fleet (identical content =
  // maximal page sharing for the dedup/COW policies, exactly the
  // common-runtime situation those policies exploit) plus a tiny per-rank
  // request path.
  s.init_classes = rt::synth_class_set("scalefw", 24, 160'000, 0x51u);
  s.request_classes = rt::synth_class_set("scale.req", 8, 40'000, 0x52u);
  s.appinit_compute = sim::Duration::millis_f(2.0);
  s.post_restore_residual = sim::Duration::millis_f(5.0);
  s.warm_service_median = sim::Duration::millis(1);
  s.service_sigma = 0.05;
  s.memory_seed = 0x5CA1E000u + rank;  // distinct heap contents per rank
  return s;
}

ScaleScenarioResult detail::run_scale_impl(const ScaleScenarioConfig& config,
                                           obs::TraceReport* trace) {
  if (config.functions == 0)
    throw std::invalid_argument{"run_scale_scenario: need functions >= 1"};
  if (config.requests == 0)
    throw std::invalid_argument{"run_scale_scenario: need requests >= 1"};

  sim::Simulation sim;
  os::Kernel kernel{sim, testbed_costs()};
  obs::Tracer& tr = kernel.trace();
  if (trace != nullptr) tr.enable();
  obs::Span root = tr.span("scenario", "exp");
  root.attr("kind", "scale");
  root.attr("policy", keep_alive_policy_name(config.policy));
  root.attr("functions", static_cast<std::uint64_t>(config.functions));
  root.attr("requests", config.requests);

  const bool prebaked = config.policy == KeepAlivePolicy::kPrebaked ||
                        config.policy == KeepAlivePolicy::kCowClone;
  faas::PlatformConfig cfg;
  cfg.idle_timeout = config.policy == KeepAlivePolicy::kKeepAlive
                         ? config.keep_alive
                         : config.reclaim_idle;
  cfg.page_store = config.policy == KeepAlivePolicy::kCowClone;
  cfg.aggregate_request_log = true;
  faas::Platform platform{kernel, testbed_runtime(), cfg, config.seed};
  for (std::uint32_t i = 0; i < config.nodes; ++i)
    platform.resources().add_node("w" + std::to_string(i + 1),
                                  config.node_mem_bytes, config.cpus_per_node);

  faas::ZipfTraceConfig workload;
  workload.functions = config.functions;
  workload.zipf_s = config.zipf_s;
  workload.rate_hz = config.rate_hz;
  workload.peak_rate_hz = config.peak_rate_hz;
  workload.period = config.period;
  workload.max_events = config.requests;
  // Arrival-budgeted, not horizon-budgeted: leave the clock horizon open
  // (2^33 s ~ 272 years; the widest representable Duration in seconds).
  workload.duration = sim::Duration::seconds(std::int64_t{1} << 33);
  workload.seed = sim::splitmix64(config.seed, 0x5CA1E);
  faas::ZipfTraceSource source{workload};

  const faas::StartMode mode =
      prebaked ? faas::StartMode::kPrebaked : faas::StartMode::kVanilla;
  for (std::uint32_t rank = 0; rank < config.functions; ++rank)
    platform.deploy(scale_function_spec(rank), mode,
                    core::SnapshotPolicy::warmup(1));
  if (config.policy == KeepAlivePolicy::kWarmPool)
    for (const std::string& name : source.function_names())
      platform.set_min_idle(name, 1);

  faas::StreamReplayOptions options;
  options.keep_request_metrics = config.keep_request_metrics;
  const faas::StreamReplayResult rep =
      faas::replay_trace_stream(platform, source, options);

  ScaleScenarioResult out;
  const faas::PlatformStats& stats = platform.stats();
  out.requests = rep.events;
  out.responses_ok = rep.responses_ok;
  out.rejected = rep.responses_rejected;
  out.fallback_served = rep.responses_fallback;
  out.cold_starts = stats.cold_starts;
  out.replicas_started = stats.replicas_started;
  out.replicas_reclaimed = stats.replicas_reclaimed;
  out.cold_start_rate =
      rep.responses_ok == 0
          ? 0.0
          : static_cast<double>(out.cold_starts) /
                static_cast<double>(rep.responses_ok);

  const faas::RequestAggregate& agg = rep.aggregate;
  out.total_p50_ms = agg.total_ms.percentile(0.50);
  out.total_p99_ms = agg.total_ms.percentile(0.99);
  out.total_p999_ms = agg.total_ms.percentile(0.999);
  out.queue_wait_p99_ms = agg.queue_wait_ms.percentile(0.99);
  out.cold_startup_p50_ms = agg.cold_startup_ms.percentile(0.50);
  out.cold_startup_p99_ms = agg.cold_startup_ms.percentile(0.99);

  out.mem_byte_seconds = platform.fleet_mem_byte_seconds();
  out.makespan_s = rep.makespan.to_seconds();
  out.peak_pending_events = rep.peak_pending_events;
  out.peak_replicas = rep.peak_replicas;
  out.functions_deployed = config.functions;
  out.functions_invoked = static_cast<std::uint32_t>(rep.per_function.size());

  std::vector<ScaleFunctionReport> ranked;
  ranked.reserve(rep.per_function.size());
  for (const auto& [name, fa] : rep.per_function)
    ranked.push_back(ScaleFunctionReport{name, fa.requests, fa.cold_starts});
  std::sort(ranked.begin(), ranked.end(),
            [](const ScaleFunctionReport& a, const ScaleFunctionReport& b) {
              if (a.requests != b.requests) return a.requests > b.requests;
              return a.function < b.function;
            });
  if (ranked.size() > 10) ranked.resize(10);
  out.hottest = std::move(ranked);

  root.end();
  if (trace != nullptr) {
    trace->absorb(tr);
    trace->finalize();
  }
  return out;
}

ScaleScenarioResult run_scale_scenario(const ScaleScenarioConfig& config) {
  return run(ScenarioSpec::from(config)).scale;
}

}  // namespace prebake::exp
