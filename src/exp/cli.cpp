#include "exp/cli.hpp"

#include <stdexcept>

namespace prebake::exp {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {  // "--" separator: everything after is positional
      for (++i; i < argc; ++i) positional_.emplace_back(argv[i]);
      break;
    }
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--flag value" when the next token is not itself a flag.
    if (i + 1 < argc && std::string_view{argv[i + 1]}.rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
  for (const auto& [flag, value] : flags_) read_[flag] = false;
}

std::optional<std::string> CliArgs::get(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  read_[flag] = true;
  return it->second;
}

std::string CliArgs::get_or(const std::string& flag, std::string fallback) const {
  return get(flag).value_or(std::move(fallback));
}

std::int64_t CliArgs::get_int_or(const std::string& flag,
                                 std::int64_t fallback) const {
  const auto v = get(flag);
  if (!v.has_value()) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument{"--" + flag + " expects an integer, got '" +
                                *v + "'"};
  }
}

double CliArgs::get_double_or(const std::string& flag, double fallback) const {
  const auto v = get(flag);
  if (!v.has_value()) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument{"--" + flag + " expects a number, got '" + *v +
                                "'"};
  }
}

std::vector<std::string> CliArgs::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [flag, was_read] : read_)
    if (!was_read) out.push_back(flag);
  return out;
}

}  // namespace prebake::exp
