// Cell-level dispatch for figure sweeps and tables: a ParallelRunner takes a
// batch of independent scenario configurations (the cells of a figure) and
// runs them across the shared worker pool. Each cell's repetitions
// additionally shard across the same pool (see scenario.hpp); nesting is
// safe because parallel_for's caller participates in the work instead of
// blocking, so a cell task can itself fan out without deadlocking the pool.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "exp/scenario.hpp"

namespace prebake::exp {

class ParallelRunner {
 public:
  // threads = 0: default (PREBAKE_THREADS env var, else hardware
  // concurrency); 1: everything runs inline. Results are bit-identical for
  // any value.
  explicit ParallelRunner(int threads = 0);

  int threads() const { return threads_; }

  // Run every start-up scenario; result i corresponds to configs[i]. Cells
  // that leave `threads` at 0 inherit this runner's thread count.
  std::vector<ScenarioResult> run_startup(
      std::vector<ScenarioConfig> configs) const;

  // Run every service-time scenario; result i corresponds to configs[i].
  std::vector<ServiceScenarioResult> run_service(
      const std::vector<ServiceScenarioConfig>& configs) const;

  // Generic deterministic fan-out over [0, n) for bench cells that are not
  // plain scenarios (e.g. platform simulations). fn must write results into
  // per-index slots.
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& fn) const;

 private:
  int threads_;
};

}  // namespace prebake::exp
