#include "exp/migration.hpp"

#include <memory>

#include "exp/calibration.hpp"
#include "exp/run.hpp"

namespace prebake::exp {

namespace {

// Baseline for the migration's break-even claim: deploy the same function
// on a fresh single-node cluster with the same cost model and measure the
// start-up a single cold request pays when the images must come from the
// registry. This is the bill for destroying a warm replica instead of
// migrating it — the very next request eats a full remote restore.
double cold_restore_baseline_ms(const MigrationScenarioConfig& config,
                                rt::FunctionSpec spec) {
  sim::Simulation sim;
  os::Kernel kernel{sim, testbed_costs()};
  faas::PlatformConfig cfg;
  cfg.idle_timeout = config.idle_timeout;
  cfg.remote_registry = config.remote_registry;
  cfg.page_store = config.page_store;
  faas::Platform platform{kernel, testbed_runtime(), cfg, config.seed};
  platform.resources().add_node("cold", config.node_mem_bytes,
                                config.cpus_per_node);
  platform.deploy(spec, faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));

  const funcs::Request req =
      funcs::sample_request(platform.registry().get(spec.name).spec.handler_id);
  auto done = std::make_shared<bool>(false);
  platform.invoke(spec.name, req,
                  [done](const funcs::Response&, const faas::RequestMetrics&) {
                    *done = true;
                  });
  while (!*done && sim.step()) {
  }
  if (platform.request_log().empty()) return 0.0;
  return platform.request_log().front().startup.to_millis();
}

}  // namespace

MigrationScenarioResult detail::run_migration_impl(
    const MigrationScenarioConfig& config, obs::TraceReport* trace) {
  sim::Simulation sim;
  os::Kernel kernel{sim, testbed_costs()};
  obs::Tracer& tr = kernel.trace();
  if (trace != nullptr) tr.enable();
  obs::Span root = tr.span("scenario", "exp");
  root.attr("kind", "migration");
  root.attr("nodes", static_cast<std::uint64_t>(config.nodes));
  root.attr("dirty_pages", config.request_dirty_pages);

  faas::PlatformConfig cfg;
  cfg.idle_timeout = config.idle_timeout;
  cfg.remote_registry = config.remote_registry;
  cfg.page_store = config.page_store;
  // One replica: the replica being live-migrated is the one serving the
  // stream, so the dirty-page knob dirties the very chain under study (and
  // overlapping arrivals queue briefly instead of spawning spares).
  cfg.max_replicas_per_function = 1;
  cfg.aggregate_request_log = true;
  cfg.restore_max_attempts = config.restore_max_attempts;
  cfg.restore_retry_backoff = config.restore_retry_backoff;
  cfg.node_recovery_delay = config.node_recovery_delay;
  cfg.migration = config.migration;
  cfg.evacuation_threshold = config.evacuation_threshold;
  cfg.evacuation_cooldown = config.evacuation_cooldown;
  faas::Platform platform{kernel, testbed_runtime(), cfg, config.seed};
  platform.resources().set_policy(config.policy);
  for (std::uint32_t i = 0; i < config.nodes; ++i)
    platform.resources().add_node("w" + std::to_string(i + 1),
                                  config.node_mem_bytes, config.cpus_per_node);

  rt::FunctionSpec spec = noop_spec();
  spec.request_dirty_pages = config.request_dirty_pages;
  const std::string fn = spec.name;
  platform.deploy(spec, faas::StartMode::kPrebaked,
                  core::SnapshotPolicy::warmup(1));

  // Pre-warm the replica whose migration the run studies, then pump until
  // it is idle-resident: the move must find a warm replica, not race its
  // first start-up.
  platform.scale_up(fn, 1);
  while (platform.idle_replica_count(fn) == 0 && sim.step()) {
  }

  // Arm the injector only now: deploy-time bake and the initial placement
  // are verified elsewhere; the chaos under study targets the migration.
  kernel.faults().configure(config.faults);

  struct Counters {
    std::uint64_t expected = 0;
    std::uint64_t answered = 0;
    std::uint64_t ok = 0;
  };
  auto counters = std::make_shared<Counters>();

  sim::Rng rng{config.seed};
  const sim::TimePoint start = sim.now();
  const sim::TimePoint end = start + config.duration;
  {
    sim::Rng stream = rng.child(1);
    const funcs::Request req =
        funcs::sample_request(platform.registry().get(fn).spec.handler_id);
    sim::TimePoint at = start;
    while (true) {
      at += sim::Duration::seconds_f(stream.exponential(1.0 / config.rate_hz));
      if (at >= end) break;
      ++counters->expected;
      sim.schedule_at(at, [counters, &platform, fn, req] {
        platform.invoke(
            fn, req,
            [counters](const funcs::Response& res, const faas::RequestMetrics&) {
              ++counters->answered;
              if (res.ok()) ++counters->ok;
            });
      });
    }
  }

  // The move itself, mid-run.
  auto source_node = std::make_shared<faas::NodeId>(faas::kNoNode);
  sim.schedule_at(start + config.migrate_at,
                  [&platform, source_node, fn, config] {
                    *source_node = platform.find_replica_node(fn);
                    if (config.drain_source) {
                      if (*source_node != faas::kNoNode)
                        platform.drain_node(
                            *source_node,
                            faas::Platform::DrainMode::kMigrateWarm);
                    } else {
                      platform.migrate_replica(fn, faas::kNoNode, config.to);
                    }
                  });

  // Pump to completion with the same livelock horizon as the chaos
  // scenario: extreme fault plans must surface as measurable request loss,
  // not as a run that never terminates.
  const sim::TimePoint horizon = end + sim::Duration::seconds(600);
  while ((counters->answered < counters->expected || sim.now() < end) &&
         sim.now() < horizon && sim.step()) {
  }
  if (config.node_recovery_delay > sim::Duration{}) {
    const sim::TimePoint settle = sim.now() + config.node_recovery_delay;
    while (sim.now() < settle && sim.step()) {
    }
  }

  MigrationScenarioResult out;
  out.requests = counters->expected;
  out.answered = counters->answered;
  out.responses_ok = counters->ok;
  const faas::PlatformStats& stats = platform.stats();
  out.rejected = stats.rejected;
  out.availability = out.requests == 0
                         ? 1.0
                         : static_cast<double>(out.responses_ok) /
                               static_cast<double>(out.requests);
  out.migrations_started = stats.migrations_started;
  out.migrations_completed = stats.migrations_completed;
  out.migrations_aborted = stats.migrations_aborted;
  out.migration_rounds = stats.migration_rounds;
  out.migration_full_dumps = stats.migration_full_dumps;
  out.migration_dest_retries = stats.migration_dest_retries;
  out.migration_precopy_bytes = stats.migration_precopy_bytes;
  out.migration_final_bytes = stats.migration_final_bytes;
  out.downtime_ms =
      stats.migrations_completed == 0
          ? 0.0
          : stats.migration_downtime.to_millis() /
                static_cast<double>(stats.migrations_completed);
  out.evacuations = stats.evacuations;
  out.rebalance_moves = stats.rebalance_moves;
  out.node_crashes = stats.node_crashes;
  out.cold_starts = stats.cold_starts;
  out.replicas_started = stats.replicas_started;
  for (const faas::WorkerNode& n : platform.resources().nodes()) {
    out.warmth_replicas_migrated += n.stats().warmth_replicas_migrated;
    out.warmth_replicas_destroyed += n.stats().warmth_replicas_destroyed;
    out.warmth_template_pages_destroyed +=
        n.stats().warmth_template_pages_destroyed;
  }
  out.source_node = *source_node;
  out.final_node = platform.find_replica_node(fn);

  const faas::RequestAggregate& agg = platform.request_aggregate();
  out.total_p50_ms = agg.total_ms.percentile(0.50);
  out.total_p95_ms = agg.total_ms.percentile(0.95);

  const faults::Injector& inj = kernel.faults();
  out.faults_injected = inj.total_fired();
  for (std::size_t s = 0; s < faults::kFaultSiteCount; ++s) {
    const auto site = static_cast<faults::FaultSite>(s);
    out.fired_by_site.emplace_back(faults::fault_site_name(site),
                                   inj.fired(site));
  }

  // The baseline runs on its own simulation with a pristine injector, so
  // it never perturbs (and is never perturbed by) the main run.
  out.cold_restore_ms = cold_restore_baseline_ms(config, spec);

  root.attr("migrations_completed", out.migrations_completed);
  root.end();
  if (trace != nullptr) {
    trace->absorb(tr);
    trace->finalize();
  }
  return out;
}

MigrationScenarioResult run_migration_scenario(
    const MigrationScenarioConfig& config) {
  return run(ScenarioSpec::from(config)).migration;
}

}  // namespace prebake::exp
