// Minimal command-line parsing for the tools and benches.
//
// Supports `--flag value`, `--flag=value`, bare `--switch`, and positional
// arguments. Unknown-flag detection is the caller's job via consumed().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace prebake::exp {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& flag) const {
    const bool present = flags_.contains(flag);
    if (present) read_[flag] = true;  // checking presence consumes a switch
    return present;
  }
  // Value access; switches (no value) read as "".
  std::optional<std::string> get(const std::string& flag) const;
  std::string get_or(const std::string& flag, std::string fallback) const;
  std::int64_t get_int_or(const std::string& flag, std::int64_t fallback) const;
  double get_double_or(const std::string& flag, double fallback) const;

  // Flags present on the command line but never read by the program.
  std::vector<std::string> unconsumed() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace prebake::exp
