// Chaos scenario: the cluster workload of exp/cluster.hpp with a seeded
// fault plan injected into the restore pipeline (os/faults.hpp) and the
// platform's resilience machinery turned on — per-start retries, restore
// deadline, Vanilla fallback, snapshot quarantine + re-bake, and node-crash
// recovery. The question the sweep answers: how much fault pressure can the
// prebaking path absorb before requests are lost or latency degrades to the
// Vanilla baseline?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faas/platform.hpp"
#include "os/faults.hpp"

namespace prebake::exp {

struct ChaosScenarioConfig {
  // Cluster shape (mirrors ClusterScenarioConfig).
  std::uint32_t nodes = 4;
  std::uint32_t cpus_per_node = 2;
  std::uint64_t node_mem_bytes = 8ull << 30;
  std::uint64_t node_snapshot_cache_bytes = 120ull << 20;
  faas::PlacementPolicy policy = faas::PlacementPolicy::kSnapshotLocality;
  bool remote_registry = true;
  sim::Duration idle_timeout = sim::Duration::seconds(4);
  double rate_hz = 0.5;  // per-function Poisson arrival rate
  sim::Duration duration = sim::Duration::seconds(600);
  std::uint64_t seed = 42;

  // The fault mix. Installed after deploy (the build-time bake is verified
  // out-of-band; chaos targets the restore path), so an all-zero plan makes
  // this scenario behave exactly like run_cluster_scenario.
  os::FaultPlan faults;

  // Resilience policy under test.
  int restore_max_attempts = 3;
  sim::Duration restore_retry_backoff = sim::Duration::millis(5);
  sim::Duration restore_deadline{};  // zero = unbounded
  std::uint32_t quarantine_threshold = 3;
  sim::Duration node_recovery_delay = sim::Duration::seconds(30);
};

struct ChaosScenarioResult {
  std::uint64_t requests = 0;   // arrivals scheduled
  std::uint64_t answered = 0;   // callbacks delivered (any status)
  std::uint64_t responses_ok = 0;
  std::uint64_t rejected = 0;
  // answered / requests: 1.0 means no request was lost outright;
  // responses_ok / requests is the availability the --check gate asserts.
  double availability = 0.0;

  std::uint64_t cold_starts = 0;
  std::uint64_t replicas_started = 0;
  std::uint64_t restore_fallbacks = 0;
  std::uint64_t restore_retries = 0;
  std::uint64_t snapshot_quarantines = 0;
  std::uint64_t snapshot_rebakes = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t node_recoveries = 0;
  std::uint64_t requests_requeued = 0;
  // restore_fallbacks / replicas_started (0 when nothing started).
  double fallback_rate = 0.0;

  double total_p50_ms = 0.0;
  double total_p95_ms = 0.0;
  double total_p99_ms = 0.0;
  double cold_startup_p50_ms = 0.0;
  double cold_startup_p95_ms = 0.0;

  // Injector accounting: (site name, times fired), plus the full firing
  // trace — the determinism tests compare traces across runs/thread counts.
  std::uint64_t faults_injected = 0;
  std::vector<std::pair<std::string, std::uint64_t>> fired_by_site;
  std::vector<faults::Injector::Event> fault_trace;

  // End-of-run circuit-breaker state per function that ever failed a
  // restore (healthy functions have no row).
  struct HealthRow {
    std::string function;
    std::uint32_t consecutive_failures = 0;
    bool quarantined = false;
    std::uint32_t rebakes = 0;
  };
  std::vector<HealthRow> snapshot_health;
};

ChaosScenarioResult run_chaos_scenario(const ChaosScenarioConfig& config);

}  // namespace prebake::exp
