#include "exp/parallel_runner.hpp"

#include "util/thread_pool.hpp"

namespace prebake::exp {

ParallelRunner::ParallelRunner(int threads)
    : threads_{util::resolve_threads(threads)} {}

std::vector<ScenarioResult> ParallelRunner::run_startup(
    std::vector<ScenarioConfig> configs) const {
  std::vector<ScenarioResult> results(configs.size());
  util::parallel_for(
      configs.size(),
      [&](std::size_t i) {
        if (configs[i].threads == 0) configs[i].threads = threads_;
        results[i] = run_startup_scenario(configs[i]);
      },
      threads_);
  return results;
}

std::vector<ServiceScenarioResult> ParallelRunner::run_service(
    const std::vector<ServiceScenarioConfig>& configs) const {
  std::vector<ServiceScenarioResult> results(configs.size());
  util::parallel_for(
      configs.size(),
      [&](std::size_t i) { results[i] = run_service_scenario(configs[i]); },
      threads_);
  return results;
}

void ParallelRunner::for_each(std::size_t n,
                              const std::function<void(std::size_t)>& fn) const {
  util::parallel_for(n, fn, threads_);
}

}  // namespace prebake::exp
