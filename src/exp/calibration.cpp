#include "exp/calibration.hpp"

#include <stdexcept>

namespace prebake::exp {

using sim::Duration;

os::CostModel testbed_costs() {
  os::CostModel c;
  // CLONE and EXEC are a tiny fraction of start-up (Figure 4).
  c.clone_call = Duration::micros(300);
  c.exec_base = Duration::micros(1500);
  c.exec_per_mib = Duration::micros(20);
  c.minor_fault = Duration::nanos(200);
  // Buffered image reads dominate restore; calibrated against the prebaked
  // NOOP (15 MiB-class snapshot) vs Image Resizer (100 MiB-class) gap.
  c.page_cache_gib_per_s = 4.2;
  c.disk_read_mib_per_s = 450.0;
  c.disk_write_mib_per_s = 380.0;
  return c;
}

rt::RuntimeCosts testbed_runtime() {
  rt::RuntimeCosts r;
  // RTS ~70 ms for Java 8 regardless of function (Section 4.2.1).
  r.bootstrap = Duration::millis_f(69.5);
  r.timing_sigma = 0.012;
  // Cold class loading + lazy JIT fit Table 1's Vanilla slope (~36.7 ms per
  // MB of classes); the warm (post-restore) load path fits PB-NOWarmup's
  // (~30.6 ms/MB).
  r.classload_per_mib_cold = Duration::millis_f(20.0);
  r.classload_per_mib_warm = Duration::millis_f(13.64);
  r.jit_per_mib = Duration::millis_f(17.46);
  r.per_class_overhead = Duration::micros(18);
  r.lazy_loader_init = Duration::millis_f(29.7);
  r.heap_base_bytes = 11ull * 1024 * 1024;
  r.metadata_factor = 1.05;
  r.code_cache_factor = 1.81;
  r.service_threads = 4;
  return r;
}

rt::FunctionSpec noop_spec() {
  rt::FunctionSpec s;
  s.name = "noop";
  s.handler_id = "noop";
  // The embedded HTTP server and framework classes loaded eagerly at init.
  s.init_classes = rt::synth_class_set("httpserver", 170, 1'200'000, 0x41u);
  // A small lazily-loaded request path (dispatcher classes).
  s.request_classes = rt::synth_class_set("noop.req", 24, 150'000, 0x42u);
  s.appinit_compute = Duration::millis_f(3.8);
  s.post_restore_residual = Duration::millis_f(57.5);
  s.warm_service_median = Duration::millis_f(1.1);
  s.service_sigma = 0.06;
  s.memory_seed = 0xD0'00F;
  return s;
}

rt::FunctionSpec markdown_spec() {
  rt::FunctionSpec s;
  s.name = "markdown-render";
  s.handler_id = "markdown";
  s.init_classes = rt::synth_class_set("httpserver", 150, 1'000'000, 0x41u);
  s.request_classes = rt::synth_class_set("md.req", 90, 600'000, 0x43u);
  // Template/markdown-engine caches built at init keep the snapshot slightly
  // above the NOOP one (14 MB vs 13 MB in the paper).
  s.init_extra_resident = 1200 * 1024;
  s.appinit_compute = Duration::millis_f(4.7);
  s.post_restore_residual = Duration::millis_f(48.5);
  s.warm_service_median = Duration::millis_f(3.2);
  s.service_sigma = 0.07;
  s.memory_seed = 0x3A'CD0;
  return s;
}

rt::FunctionSpec image_resizer_spec() {
  rt::FunctionSpec s;
  s.name = "image-resizer";
  s.handler_id = "image-resizer";
  // javax.imageio + java.awt + the HTTP server: a much bigger eager set
  // ("the Image Resizer function depends on three image processing
  // packages, all from the Java SDK").
  s.init_classes = rt::synth_class_set("imaging", 850, 6'500'000, 0x44u);
  s.request_classes = rt::synth_class_set("resize.req", 60, 400'000, 0x45u);
  // The 1 MiB source photo read at start-up.
  s.init_io_bytes = 1ull * 1024 * 1024;
  // Decoded bitmap + AWT raster buffers: the reason the snapshot is ~100 MB.
  s.init_extra_resident = 84ull * 1024 * 1024;
  s.appinit_compute = Duration::millis_f(91.1);  // decode + raster setup
  s.post_restore_residual = Duration::millis_f(57.2);
  s.warm_service_median = Duration::millis_f(25.0);
  s.service_sigma = 0.05;
  s.memory_seed = 0x1'3440;
  return s;
}

rt::FunctionSpec synthetic_spec(SynthSize size) {
  rt::FunctionSpec s;
  s.handler_id = "synthetic:0";
  // Lean eager init: just the HTTP endpoint. All synthetic classes load on
  // the first invocation ("loads a predefined number of classes when
  // invoked"), hence start-up for these functions is measured to the first
  // response (Section 4.2.2).
  s.init_classes = rt::synth_class_set("httpserver", 40, 190'000, 0x41u);
  s.appinit_compute = Duration::millis_f(2.6);
  s.post_restore_residual = Duration::millis_f(47.3);
  s.warm_service_median = Duration::micros(600);
  s.service_sigma = 0.06;
  switch (size) {
    case SynthSize::kSmall:
      s.name = "synthetic-small";
      s.handler_id = "synthetic:374";
      s.request_classes = rt::small_class_set();
      s.memory_seed = 0x51;
      break;
    case SynthSize::kMedium:
      s.name = "synthetic-medium";
      s.handler_id = "synthetic:574";
      s.request_classes = rt::medium_class_set();
      s.memory_seed = 0x52;
      break;
    case SynthSize::kBig:
      s.name = "synthetic-big";
      s.handler_id = "synthetic:1574";
      s.request_classes = rt::big_class_set();
      s.memory_seed = 0x53;
      break;
  }
  return s;
}

const char* runtime_kind_name(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kJava8: return "java8";
    case RuntimeKind::kNode12: return "node12";
    case RuntimeKind::kPython3: return "python3";
  }
  throw std::invalid_argument{"runtime_kind_name: bad kind"};
}

rt::RuntimeCosts runtime_profile(RuntimeKind kind) {
  rt::RuntimeCosts r = testbed_runtime();
  switch (kind) {
    case RuntimeKind::kJava8:
      break;  // the calibrated testbed profile
    case RuntimeKind::kNode12:
      // V8 snapshots most of its core state: short RTS; the baseline JIT is
      // cheap but optimizing tiers still benefit from warm-up.
      r.bootstrap = Duration::millis_f(48.0);
      r.classload_per_mib_cold = Duration::millis_f(14.0);  // parse + compile
      r.classload_per_mib_warm = Duration::millis_f(10.0);
      r.jit_per_mib = Duration::millis_f(8.0);
      r.lazy_loader_init = Duration::millis_f(9.0);
      r.heap_base_bytes = 8ull * 1024 * 1024;
      r.code_cache_factor = 1.1;
      r.service_threads = 2;
      break;
    case RuntimeKind::kPython3:
      // CPython: light interpreter bootstrap, no JIT at all — importing
      // byte-compiled modules is the whole lazy cost, so prebaking removes
      // proportionally less than it does for the JVM.
      r.bootstrap = Duration::millis_f(22.0);
      r.classload_per_mib_cold = Duration::millis_f(11.0);  // import + unmarshal
      r.classload_per_mib_warm = Duration::millis_f(8.0);
      r.jit_per_mib = Duration::millis_f(0.0);
      r.lazy_loader_init = Duration::millis_f(4.0);
      r.heap_base_bytes = 6ull * 1024 * 1024;
      r.code_cache_factor = 0.0;  // nothing compiled
      r.metadata_factor = 1.4;    // code objects are bulky
      r.service_threads = 1;
      break;
  }
  return r;
}

rt::FunctionSpec cross_runtime_spec(RuntimeKind kind, int code_mb) {
  rt::FunctionSpec s;
  s.name = std::string{"hello-"} + runtime_kind_name(kind) + "-" +
           std::to_string(code_mb) + "mb";
  s.handler_id = "noop";
  switch (kind) {
    case RuntimeKind::kJava8:
      s.runtime_binary = "/opt/jvm/bin/java";
      break;
    case RuntimeKind::kNode12:
      s.runtime_binary = "/usr/bin/node";
      break;
    case RuntimeKind::kPython3:
      s.runtime_binary = "/usr/bin/python3";
      break;
  }
  s.init_classes = rt::synth_class_set("framework", 40, 190'000, 0x41u);
  s.request_classes = rt::synth_class_set(
      "app", code_mb * 40, static_cast<std::uint64_t>(code_mb) * 1'000'000,
      static_cast<std::uint64_t>(code_mb) + static_cast<std::uint64_t>(kind));
  s.appinit_compute = Duration::millis_f(2.6);
  s.post_restore_residual = Duration::millis_f(
      kind == RuntimeKind::kJava8 ? 47.3 : kind == RuntimeKind::kNode12 ? 28.0
                                                                        : 14.0);
  s.warm_service_median = Duration::micros(600);
  s.service_sigma = 0.06;
  s.memory_seed = 0x600 + static_cast<std::uint64_t>(kind);
  return s;
}

const char* synth_size_name(SynthSize size) {
  switch (size) {
    case SynthSize::kSmall: return "Small";
    case SynthSize::kMedium: return "Medium";
    case SynthSize::kBig: return "Big";
  }
  throw std::invalid_argument{"synth_size_name: bad size"};
}

}  // namespace prebake::exp
