#include "exp/chaos.hpp"

#include <memory>

#include "exp/calibration.hpp"
#include "exp/run.hpp"

namespace prebake::exp {

ChaosScenarioResult detail::run_chaos_impl(const ChaosScenarioConfig& config,
                                           obs::TraceReport* trace) {
  sim::Simulation sim;
  os::Kernel kernel{sim, testbed_costs()};
  obs::Tracer& tr = kernel.trace();
  if (trace != nullptr) tr.enable();
  obs::Span root = tr.span("scenario", "exp");
  root.attr("kind", "chaos");
  root.attr("nodes", static_cast<std::uint64_t>(config.nodes));
  root.attr("policy", faas::placement_policy_name(config.policy));

  faas::PlatformConfig cfg;
  cfg.idle_timeout = config.idle_timeout;
  cfg.remote_registry = config.remote_registry;
  cfg.node_snapshot_cache_bytes = config.node_snapshot_cache_bytes;
  cfg.aggregate_request_log = true;
  cfg.restore_max_attempts = config.restore_max_attempts;
  cfg.restore_retry_backoff = config.restore_retry_backoff;
  cfg.restore_deadline = config.restore_deadline;
  cfg.quarantine_threshold = config.quarantine_threshold;
  cfg.node_recovery_delay = config.node_recovery_delay;
  faas::Platform platform{kernel, testbed_runtime(), cfg, config.seed};
  platform.resources().set_policy(config.policy);
  for (std::uint32_t i = 0; i < config.nodes; ++i)
    platform.resources().add_node("w" + std::to_string(i + 1),
                                  config.node_mem_bytes, config.cpus_per_node);

  const rt::FunctionSpec specs[] = {noop_spec(), markdown_spec(),
                                    image_resizer_spec()};
  std::vector<std::string> functions;
  for (const rt::FunctionSpec& spec : specs) {
    functions.push_back(spec.name);
    platform.deploy(spec, faas::StartMode::kPrebaked,
                    core::SnapshotPolicy::warmup(1));
  }

  // Arm the injector only after the deploy-time bakes: the chaos under
  // study is the restore/serving path, not the verified build step.
  kernel.faults().configure(config.faults);

  struct Counters {
    std::uint64_t expected = 0;
    std::uint64_t answered = 0;
    std::uint64_t ok = 0;
  };
  auto counters = std::make_shared<Counters>();

  sim::Rng rng{config.seed};
  const sim::TimePoint start = sim.now();
  const sim::TimePoint end = start + config.duration;
  for (std::size_t f = 0; f < functions.size(); ++f) {
    sim::Rng stream = rng.child(f + 1);
    const funcs::Request req = funcs::sample_request(
        platform.registry().get(functions[f]).spec.handler_id);
    sim::TimePoint at = start;
    while (true) {
      at += sim::Duration::seconds_f(stream.exponential(1.0 / config.rate_hz));
      if (at >= end) break;
      ++counters->expected;
      sim.schedule_at(at, [counters, &platform, fn = functions[f], req] {
        platform.invoke(
            fn, req,
            [counters](const funcs::Response& res, const faas::RequestMetrics&) {
              ++counters->answered;
              if (res.ok()) ++counters->ok;
            });
      });
    }
  }

  // Pump until every arrival is answered — but no further than a fixed
  // grace horizon past the arrival window. Extreme fault plans (e.g. a
  // per-start node-crash rate high enough that every batch of restarts
  // takes its node down again) can livelock the crash/recover/restart
  // cycle indefinitely; the horizon turns that into measurable request
  // loss (availability < 1) instead of a run that never terminates.
  const sim::TimePoint horizon = end + sim::Duration::seconds(600);
  while ((counters->answered < counters->expected || sim.now() < end) &&
         sim.now() < horizon && sim.step()) {
  }
  // Let in-flight recovery timers settle: a crash during the last requests
  // schedules its node's recovery up to node_recovery_delay past the final
  // response, and end-of-run stats should reflect the healed cluster.
  if (config.node_recovery_delay > sim::Duration{}) {
    const sim::TimePoint settle = sim.now() + config.node_recovery_delay;
    while (sim.now() < settle && sim.step()) {
    }
  }

  ChaosScenarioResult out;
  out.requests = counters->expected;
  out.answered = counters->answered;
  out.responses_ok = counters->ok;
  const faas::PlatformStats& stats = platform.stats();
  out.rejected = stats.rejected;
  out.availability = out.requests == 0
                         ? 1.0
                         : static_cast<double>(out.responses_ok) /
                               static_cast<double>(out.requests);
  out.cold_starts = stats.cold_starts;
  out.replicas_started = stats.replicas_started;
  out.restore_fallbacks = stats.restore_fallbacks;
  out.restore_retries = stats.restore_retries;
  out.snapshot_quarantines = stats.snapshot_quarantines;
  out.snapshot_rebakes = stats.snapshot_rebakes;
  out.node_crashes = stats.node_crashes;
  out.node_recoveries = stats.node_recoveries;
  out.requests_requeued = stats.requests_requeued;
  out.fallback_rate = stats.replicas_started == 0
                          ? 0.0
                          : static_cast<double>(stats.restore_fallbacks) /
                                static_cast<double>(stats.replicas_started);

  const faas::RequestAggregate& agg = platform.request_aggregate();
  out.total_p50_ms = agg.total_ms.percentile(0.50);
  out.total_p95_ms = agg.total_ms.percentile(0.95);
  out.total_p99_ms = agg.total_ms.percentile(0.99);
  out.cold_startup_p50_ms = agg.cold_startup_ms.percentile(0.50);
  out.cold_startup_p95_ms = agg.cold_startup_ms.percentile(0.95);

  const faults::Injector& inj = kernel.faults();
  out.faults_injected = inj.total_fired();
  for (std::size_t s = 0; s < faults::kFaultSiteCount; ++s) {
    const auto site = static_cast<faults::FaultSite>(s);
    out.fired_by_site.emplace_back(faults::fault_site_name(site),
                                   inj.fired(site));
  }
  out.fault_trace = inj.trace();
  for (const auto& [fn, health] : platform.snapshot_health())
    out.snapshot_health.push_back({fn, health.consecutive_failures,
                                   health.quarantined, health.rebakes});

  root.attr("faults_injected", out.faults_injected);
  root.end();
  if (trace != nullptr) {
    trace->absorb(tr);
    trace->finalize();
  }
  return out;
}

ChaosScenarioResult run_chaos_scenario(const ChaosScenarioConfig& config) {
  return run(ScenarioSpec::from(config)).chaos;
}

}  // namespace prebake::exp
