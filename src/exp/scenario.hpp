// Experiment scenario runners shared by the benchmark binaries and the
// calibration tests. Each scenario builds the function once, bakes the
// snapshot (if the technique needs one), then measures `repetitions`
// independent replica start-ups exactly as the paper's harness does
// (Section 4.1: runtime restarted before every run; 200 repetitions).
//
// Repetitions are sharded across the worker pool in fixed-size blocks whose
// layout depends only on the repetition count; every repetition draws its
// noise from Rng{splitmix64(seed, rep)}. Results are therefore bit-identical
// at any thread count — see DESIGN.md, "Parallel harness & determinism".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/startup.hpp"
#include "exp/calibration.hpp"
#include "rt/function_spec.hpp"

namespace prebake::exp {

enum class Technique {
  kVanilla,
  kPrebakeNoWarmup,
  kPrebakeWarmup,
  // SOCK-style zygote fork [18,19]: COW-fork a pre-booted runtime, run only
  // app init. A related-work baseline, not part of the paper's evaluation.
  kZygoteFork,
};

const char* technique_name(Technique t);

struct ScenarioConfig {
  rt::FunctionSpec spec;
  Technique technique = Technique::kVanilla;
  int repetitions = 200;
  // Measure start-up until the first response instead of until
  // ready-to-serve. The paper's synthetic functions load their classes on
  // first invocation, so their start-up is measured this way.
  bool measure_first_response = false;
  std::uint64_t seed = 42;
  std::uint32_t warmup_requests = 1;  // for kPrebakeWarmup
  // Runtime cost profile; defaults to the calibrated Java 8 testbed. The
  // cross-runtime ablation passes runtime_profile(kNode12/kPython3).
  std::optional<rt::RuntimeCosts> runtime;
  // Worker threads for the repetition shards. 0 = default (PREBAKE_THREADS
  // env var, else hardware concurrency); 1 = run inline. Any value produces
  // bit-identical results.
  int threads = 0;
};

struct ScenarioResult {
  std::vector<core::StartupBreakdown> breakdowns;
  std::vector<double> startup_ms;  // per the config's start-up definition
  std::uint64_t snapshot_nominal_bytes = 0;  // 0 for Vanilla
  double bake_time_ms = 0.0;
};

ScenarioResult run_startup_scenario(const ScenarioConfig& config);

// The seed harness's serial runner, kept as the wall-clock baseline for
// bench_harness and as an independent check of the parallel engine: one
// testbed runs build + bake + all repetitions sequentially with the legacy
// sequential RNG stream. Statistically equivalent to run_startup_scenario
// but not bit-identical (different noise stream derivation).
// `config.threads` is ignored.
ScenarioResult run_startup_scenario_reference(const ScenarioConfig& config);

// Service-time scenario (Figure 7): start one replica with the given
// technique, then apply `requests` sequential requests; returns per-request
// service times and the response bodies (for cross-technique equality
// checks).
struct ServiceScenarioResult {
  std::vector<double> service_ms;
  std::vector<std::string> response_bodies;
  double startup_ms = 0.0;
};

ServiceScenarioResult run_service_scenario(const rt::FunctionSpec& spec,
                                           Technique technique, int requests,
                                           std::uint64_t seed = 42);

// Batched form used by ParallelRunner::run_service.
struct ServiceScenarioConfig {
  rt::FunctionSpec spec;
  Technique technique = Technique::kVanilla;
  int requests = 1000;
  std::uint64_t seed = 42;
};

ServiceScenarioResult run_service_scenario(const ServiceScenarioConfig& config);

}  // namespace prebake::exp
