// Experiment scenario runners shared by the benchmark binaries and the
// calibration tests. Each scenario builds a fresh simulated testbed, bakes
// the snapshot (if the technique needs one), then measures `repetitions`
// independent replica start-ups exactly as the paper's harness does
// (Section 4.1: runtime restarted before every run; 200 repetitions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/startup.hpp"
#include "exp/calibration.hpp"
#include "rt/function_spec.hpp"

namespace prebake::exp {

enum class Technique {
  kVanilla,
  kPrebakeNoWarmup,
  kPrebakeWarmup,
  // SOCK-style zygote fork [18,19]: COW-fork a pre-booted runtime, run only
  // app init. A related-work baseline, not part of the paper's evaluation.
  kZygoteFork,
};

const char* technique_name(Technique t);

struct ScenarioConfig {
  rt::FunctionSpec spec;
  Technique technique = Technique::kVanilla;
  int repetitions = 200;
  // Measure start-up until the first response instead of until
  // ready-to-serve. The paper's synthetic functions load their classes on
  // first invocation, so their start-up is measured this way.
  bool measure_first_response = false;
  std::uint64_t seed = 42;
  std::uint32_t warmup_requests = 1;  // for kPrebakeWarmup
  // Runtime cost profile; defaults to the calibrated Java 8 testbed. The
  // cross-runtime ablation passes runtime_profile(kNode12/kPython3).
  std::optional<rt::RuntimeCosts> runtime;
};

struct ScenarioResult {
  std::vector<core::StartupBreakdown> breakdowns;
  std::vector<double> startup_ms;  // per the config's start-up definition
  std::uint64_t snapshot_nominal_bytes = 0;  // 0 for Vanilla
  double bake_time_ms = 0.0;
};

ScenarioResult run_startup_scenario(const ScenarioConfig& config);

// Service-time scenario (Figure 7): start one replica with the given
// technique, then apply `requests` sequential requests; returns per-request
// service times and the response bodies (for cross-technique equality
// checks).
struct ServiceScenarioResult {
  std::vector<double> service_ms;
  std::vector<std::string> response_bodies;
  double startup_ms = 0.0;
};

ServiceScenarioResult run_service_scenario(const rt::FunctionSpec& spec,
                                           Technique technique, int requests,
                                           std::uint64_t seed = 42);

}  // namespace prebake::exp
