// Cluster scenario: the paper's three functions under mixed Poisson traffic
// on a multi-node platform with a remote snapshot registry (Section 7's
// "checkpoint/restore as a service"). The knob under study is the placement
// policy: how often does a restore land on a node that already holds the
// function's images (local, page-cached reads) versus one that must pull
// them over the network first?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faas/platform.hpp"

namespace prebake::exp {

struct ClusterScenarioConfig {
  std::uint32_t nodes = 4;
  // Cores per node for the WorkerNode timeline; 0 = uncapped.
  std::uint32_t cpus_per_node = 2;
  std::uint64_t node_mem_bytes = 8ull << 30;
  // Per-node snapshot cache; sized below the three functions' combined
  // image footprint so placement decides the eviction/refetch rate.
  std::uint64_t node_snapshot_cache_bytes = 120ull << 20;
  faas::PlacementPolicy policy = faas::PlacementPolicy::kWorstFit;
  bool remote_registry = true;
  // Content-addressed page store per node (DESIGN.md §6f): delta-aware
  // registry transfers + COW template restores. Off = legacy file cache.
  bool page_store = false;
  std::uint64_t node_page_store_bytes = 0;  // 0 = unbounded
  faas::StartMode mode = faas::StartMode::kPrebaked;
  // Sparse arrivals against a short idle timeout: pools drain between
  // requests, so cold starts recur and placement decides their cost.
  sim::Duration idle_timeout = sim::Duration::seconds(4);
  double rate_hz = 0.5;  // per-function Poisson arrival rate
  sim::Duration duration = sim::Duration::seconds(600);
  std::uint64_t seed = 42;
};

struct ClusterNodeReport {
  faas::NodeId id = 0;
  std::string name;
  std::string state;
  std::uint32_t replicas = 0;  // resident at end of run
  std::uint64_t mem_used = 0;
  std::uint64_t mem_capacity = 0;
  std::uint64_t replicas_placed = 0;
  std::uint64_t snapshot_hits = 0;
  std::uint64_t snapshot_misses = 0;
  std::uint64_t snapshot_evictions = 0;
  std::uint64_t remote_bytes_fetched = 0;
  std::size_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  double busy_ms = 0.0;
  // Page-store accounting (zero with page_store off).
  std::uint64_t store_hit_pages = 0;
  std::uint64_t store_delta_bytes = 0;
  std::uint64_t template_clones = 0;
  std::uint64_t store_pages = 0;       // resident records at end of run
  std::size_t store_templates = 0;
  // Live-migration / warmth ledger (zero unless migrations ran, §6i).
  std::uint64_t migrations_out = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t migrations_aborted = 0;
  std::uint64_t warmth_replicas_migrated = 0;
  std::uint64_t warmth_replicas_destroyed = 0;
};

struct ClusterScenarioResult {
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t restore_fallbacks = 0;
  std::uint64_t replicas_started = 0;
  // From the platform's bounded aggregate (the scenario always runs with
  // aggregate_request_log on).
  double total_p50_ms = 0.0;
  double total_p95_ms = 0.0;
  double total_p99_ms = 0.0;
  double cold_startup_p50_ms = 0.0;
  double cold_startup_p95_ms = 0.0;
  std::uint64_t snapshot_hits = 0;
  std::uint64_t snapshot_misses = 0;
  std::uint64_t remote_bytes_fetched = 0;
  std::uint64_t store_hit_pages = 0;
  std::uint64_t store_delta_bytes = 0;
  std::uint64_t template_clones = 0;
  std::vector<ClusterNodeReport> nodes;
};

ClusterScenarioResult run_cluster_scenario(const ClusterScenarioConfig& config);

}  // namespace prebake::exp
