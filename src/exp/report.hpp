// Plain-text table/figure rendering for the benchmark binaries.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/bootstrap.hpp"

namespace prebake::exp {

// Fixed-width table printer.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_ms(double ms, int precision = 2);
std::string fmt_interval(const stats::Interval& iv, int precision = 2);
std::string fmt_percent(double ratio, int precision = 2);
std::string fmt_mib(std::uint64_t bytes);

// Horizontal ASCII bar scaled to `max_value` over `width` columns.
std::string ascii_bar(double value, double max_value, int width = 48);

// Render an ECDF as a quantile table (step plot in text form).
std::string render_ecdf(std::span<const double> sample,
                        std::span<const double> quantiles);

}  // namespace prebake::exp
