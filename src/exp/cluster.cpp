#include "exp/cluster.hpp"

#include <memory>

#include "exp/calibration.hpp"
#include "exp/run.hpp"

namespace prebake::exp {

ClusterScenarioResult detail::run_cluster_impl(
    const ClusterScenarioConfig& config, obs::TraceReport* trace) {
  sim::Simulation sim;
  os::Kernel kernel{sim, testbed_costs()};
  obs::Tracer& tr = kernel.trace();
  if (trace != nullptr) tr.enable();
  // Everything — deploys, restores, serving — nests under one root span.
  obs::Span root = tr.span("scenario", "exp");
  root.attr("kind", "cluster");
  root.attr("nodes", static_cast<std::uint64_t>(config.nodes));
  root.attr("policy", faas::placement_policy_name(config.policy));

  faas::PlatformConfig cfg;
  cfg.idle_timeout = config.idle_timeout;
  cfg.remote_registry = config.remote_registry;
  cfg.node_snapshot_cache_bytes = config.node_snapshot_cache_bytes;
  cfg.page_store = config.page_store;
  cfg.node_page_store_bytes = config.node_page_store_bytes;
  cfg.aggregate_request_log = true;
  faas::Platform platform{kernel, testbed_runtime(), cfg, config.seed};
  platform.resources().set_policy(config.policy);
  for (std::uint32_t i = 0; i < config.nodes; ++i)
    platform.resources().add_node("w" + std::to_string(i + 1),
                                  config.node_mem_bytes, config.cpus_per_node);

  const rt::FunctionSpec specs[] = {noop_spec(), markdown_spec(),
                                    image_resizer_spec()};
  std::vector<std::string> functions;
  for (const rt::FunctionSpec& spec : specs) {
    functions.push_back(spec.name);
    platform.deploy(spec, config.mode, core::SnapshotPolicy::warmup(1));
  }

  struct Counters {
    std::uint64_t expected = 0;
    std::uint64_t answered = 0;
    std::uint64_t ok = 0;
  };
  auto counters = std::make_shared<Counters>();

  // Independent Poisson arrival stream per function, all interleaved on the
  // one simulation (unlike run_open_loop, which drives a single function).
  sim::Rng rng{config.seed};
  const sim::TimePoint start = sim.now();
  const sim::TimePoint end = start + config.duration;
  for (std::size_t f = 0; f < functions.size(); ++f) {
    sim::Rng stream = rng.child(f + 1);
    const funcs::Request req = funcs::sample_request(
        platform.registry().get(functions[f]).spec.handler_id);
    sim::TimePoint at = start;
    while (true) {
      at += sim::Duration::seconds_f(stream.exponential(1.0 / config.rate_hz));
      if (at >= end) break;
      ++counters->expected;
      sim.schedule_at(at, [counters, &platform, fn = functions[f], req] {
        platform.invoke(
            fn, req,
            [counters](const funcs::Response& res, const faas::RequestMetrics&) {
              ++counters->answered;
              if (res.ok()) ++counters->ok;
            });
      });
    }
  }

  while ((counters->answered < counters->expected || sim.now() < end) &&
         sim.step()) {
  }

  ClusterScenarioResult out;
  const faas::PlatformStats& stats = platform.stats();
  out.requests = stats.invocations;
  out.responses_ok = counters->ok;
  out.rejected = stats.rejected;
  out.cold_starts = stats.cold_starts;
  out.restore_fallbacks = stats.restore_fallbacks;
  out.replicas_started = stats.replicas_started;

  const faas::RequestAggregate& agg = platform.request_aggregate();
  out.total_p50_ms = agg.total_ms.percentile(0.50);
  out.total_p95_ms = agg.total_ms.percentile(0.95);
  out.total_p99_ms = agg.total_ms.percentile(0.99);
  out.cold_startup_p50_ms = agg.cold_startup_ms.percentile(0.50);
  out.cold_startup_p95_ms = agg.cold_startup_ms.percentile(0.95);

  for (const faas::WorkerNode& n : platform.resources().nodes()) {
    ClusterNodeReport report;
    report.id = n.id();
    report.name = n.name();
    report.state = faas::node_state_name(n.state());
    report.replicas = n.replicas();
    report.mem_used = n.mem_used();
    report.mem_capacity = n.mem_capacity();
    report.replicas_placed = n.stats().replicas_placed;
    report.snapshot_hits = n.stats().snapshot_hits;
    report.snapshot_misses = n.stats().snapshot_misses;
    report.snapshot_evictions = n.stats().snapshot_evictions;
    report.remote_bytes_fetched = n.stats().remote_bytes_fetched;
    report.cache_entries = n.cache_entries();
    report.cache_bytes = n.cache_bytes();
    report.busy_ms = n.stats().busy.to_millis();
    report.store_hit_pages = n.stats().store_hit_pages;
    report.store_delta_bytes = n.stats().store_delta_bytes;
    report.template_clones = n.stats().template_clones;
    report.store_pages = n.store().stored_pages();
    report.store_templates = n.store().template_count();
    report.migrations_out = n.stats().migrations_out;
    report.migrations_in = n.stats().migrations_in;
    report.migrations_aborted = n.stats().migrations_aborted;
    report.warmth_replicas_migrated = n.stats().warmth_replicas_migrated;
    report.warmth_replicas_destroyed = n.stats().warmth_replicas_destroyed;
    out.snapshot_hits += report.snapshot_hits;
    out.snapshot_misses += report.snapshot_misses;
    out.remote_bytes_fetched += report.remote_bytes_fetched;
    out.store_hit_pages += report.store_hit_pages;
    out.store_delta_bytes += report.store_delta_bytes;
    out.template_clones += report.template_clones;
    out.nodes.push_back(std::move(report));
  }

  root.end();
  if (trace != nullptr) {
    trace->absorb(tr);
    trace->finalize();
  }
  return out;
}

ClusterScenarioResult run_cluster_scenario(const ClusterScenarioConfig& config) {
  return run(ScenarioSpec::from(config)).cluster;
}

}  // namespace prebake::exp
