// Calibration of the simulated testbed to the paper's experimental setup:
// a quad-core i5-3470S VM, 8 GB RAM, Ubuntu 16.04 (Linux 4.15), Oracle Java
// 1.8.0_201 (Section 4.1). Constants were fit so the *emergent* start-up
// medians reproduce the paper's reported numbers; see DESIGN.md §5 and
// EXPERIMENTS.md for the paper-vs-measured comparison.
#pragma once

#include "os/cost_model.hpp"
#include "rt/function_spec.hpp"
#include "rt/runtime.hpp"

namespace prebake::exp {

// Kernel-side costs of the simulated testbed.
os::CostModel testbed_costs();

// Runtime-side (JVM-like) costs of the simulated testbed.
rt::RuntimeCosts testbed_runtime();

// --- Other runtimes (paper Section 7 future work: "extend our evaluation
// to other runtime environments such as Node.JS and Python") ---------------
enum class RuntimeKind { kJava8, kNode12, kPython3 };
const char* runtime_kind_name(RuntimeKind kind);
// Cost profile for a runtime: Java 8 is the calibrated testbed; Node 12
// (V8: quicker bootstrap, cheap baseline JIT) and CPython 3 (no JIT, light
// bootstrap, byte-compiled module import) are modeled from their published
// start-up characteristics.
rt::RuntimeCosts runtime_profile(RuntimeKind kind);
// A size-parameterized function for cross-runtime comparison ("hello" +
// `code_mb` MB of lazily imported application code).
rt::FunctionSpec cross_runtime_spec(RuntimeKind kind, int code_mb);

// --- The paper's three real functions (Sections 4.1-4.2) -------------------
// NOOP: acks every request; vanilla ~103 ms -> prebaked ~62 ms (40%).
rt::FunctionSpec noop_spec();
// Markdown Render: markdown -> HTML; ~100 ms -> ~53 ms (47%).
rt::FunctionSpec markdown_spec();
// Image Resizer: loads a 1 MiB 3440x1440 image at init, scales to 10% per
// request; ~310 ms -> ~87 ms (71%); 99.2 MB snapshot.
rt::FunctionSpec image_resizer_spec();

// --- The synthetic functions of Section 4.2.2 ------------------------------
enum class SynthSize { kSmall, kMedium, kBig };
// small: 374 classes (~2.8 MB); medium: 574 (~9.2 MB); big: 1574 (~41 MB).
// All classes are loaded lazily when the function is first invoked, so the
// paper's start-up measurement for them runs until the first response.
rt::FunctionSpec synthetic_spec(SynthSize size);

const char* synth_size_name(SynthSize size);

}  // namespace prebake::exp
