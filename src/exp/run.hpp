// Unified scenario entry point: every experiment the repo can run —
// startup repetitions (Figures 3-6), the multi-node cluster workload, and
// the fault-injected chaos workload — goes through exp::run(ScenarioSpec).
// The legacy free functions (run_startup_scenario, run_cluster_scenario,
// run_chaos_scenario) are one-line wrappers over this entry point.
//
// A ScenarioSpec carries the scenario kind, the knobs shared by every kind
// (seed, repetitions, threads), and the kind-specific config. The shared
// fields are authoritative: run() copies them into the selected config, so
// sweeping seeds or repetition counts never needs to know which kind is
// being run.
//
// Setting `trace` captures a deterministic obs::TraceReport of the run
// (spans + counters/histograms) into ScenarioRun::trace — see DESIGN.md
// §6e. Tracing never perturbs simulated results.
#pragma once

#include "exp/chaos.hpp"
#include "exp/cluster.hpp"
#include "exp/migration.hpp"
#include "exp/scale.hpp"
#include "exp/scenario.hpp"
#include "obs/report.hpp"

namespace prebake::exp {

enum class ScenarioKind { kStartup, kCluster, kChaos, kScale, kMigration };

const char* scenario_kind_name(ScenarioKind kind);

struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::kStartup;

  // Shared knobs, written into the selected config by run(). repetitions
  // and threads only shape the startup kind (cluster/chaos drive load by
  // duration x rate on one simulation); seed applies to every kind.
  std::uint64_t seed = 42;
  int repetitions = 200;
  int threads = 0;
  // Capture a trace of the run into ScenarioRun::trace.
  bool trace = false;

  // Kind-specific configs; only the one matching `kind` is consulted.
  ScenarioConfig startup;
  ClusterScenarioConfig cluster;
  ChaosScenarioConfig chaos;
  ScaleScenarioConfig scale;
  MigrationScenarioConfig migration;

  // Lift a legacy config into a spec (shared fields mirrored out).
  static ScenarioSpec from(const ScenarioConfig& config);
  static ScenarioSpec from(const ClusterScenarioConfig& config);
  static ScenarioSpec from(const ChaosScenarioConfig& config);
  static ScenarioSpec from(const ScaleScenarioConfig& config);
  static ScenarioSpec from(const MigrationScenarioConfig& config);
};

struct ScenarioRun {
  ScenarioKind kind = ScenarioKind::kStartup;
  // Only the member matching `kind` is populated.
  ScenarioResult startup;
  ClusterScenarioResult cluster;
  ChaosScenarioResult chaos;
  ScaleScenarioResult scale;
  MigrationScenarioResult migration;
  // Populated (and finalized) when the spec asked for tracing.
  obs::TraceReport trace;
};

ScenarioRun run(const ScenarioSpec& spec);

namespace detail {
// The real runners. `trace` is nullptr when tracing is off; otherwise the
// impl absorbs every testbed tracer into it and finalizes.
ScenarioResult run_startup_impl(const ScenarioConfig& config,
                                obs::TraceReport* trace);
ClusterScenarioResult run_cluster_impl(const ClusterScenarioConfig& config,
                                       obs::TraceReport* trace);
ChaosScenarioResult run_chaos_impl(const ChaosScenarioConfig& config,
                                   obs::TraceReport* trace);
ScaleScenarioResult run_scale_impl(const ScaleScenarioConfig& config,
                                   obs::TraceReport* trace);
MigrationScenarioResult run_migration_impl(const MigrationScenarioConfig& config,
                                           obs::TraceReport* trace);
}  // namespace detail

}  // namespace prebake::exp
