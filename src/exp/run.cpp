#include "exp/run.hpp"

#include <stdexcept>

namespace prebake::exp {

const char* scenario_kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kStartup: return "startup";
    case ScenarioKind::kCluster: return "cluster";
    case ScenarioKind::kChaos: return "chaos";
    case ScenarioKind::kScale: return "scale";
    case ScenarioKind::kMigration: return "migration";
  }
  throw std::invalid_argument{"scenario_kind_name: bad kind"};
}

ScenarioSpec ScenarioSpec::from(const ScenarioConfig& config) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kStartup;
  spec.seed = config.seed;
  spec.repetitions = config.repetitions;
  spec.threads = config.threads;
  spec.startup = config;
  return spec;
}

ScenarioSpec ScenarioSpec::from(const ClusterScenarioConfig& config) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kCluster;
  spec.seed = config.seed;
  spec.cluster = config;
  return spec;
}

ScenarioSpec ScenarioSpec::from(const ChaosScenarioConfig& config) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kChaos;
  spec.seed = config.seed;
  spec.chaos = config;
  return spec;
}

ScenarioSpec ScenarioSpec::from(const ScaleScenarioConfig& config) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kScale;
  spec.seed = config.seed;
  spec.threads = config.threads;
  spec.scale = config;
  return spec;
}

ScenarioSpec ScenarioSpec::from(const MigrationScenarioConfig& config) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kMigration;
  spec.seed = config.seed;
  spec.migration = config;
  return spec;
}

ScenarioRun run(const ScenarioSpec& spec) {
  ScenarioRun out;
  out.kind = spec.kind;
  obs::TraceReport* trace = spec.trace ? &out.trace : nullptr;
  switch (spec.kind) {
    case ScenarioKind::kStartup: {
      ScenarioConfig cfg = spec.startup;
      cfg.seed = spec.seed;
      cfg.repetitions = spec.repetitions;
      cfg.threads = spec.threads;
      out.startup = detail::run_startup_impl(cfg, trace);
      return out;
    }
    case ScenarioKind::kCluster: {
      ClusterScenarioConfig cfg = spec.cluster;
      cfg.seed = spec.seed;
      out.cluster = detail::run_cluster_impl(cfg, trace);
      return out;
    }
    case ScenarioKind::kChaos: {
      ChaosScenarioConfig cfg = spec.chaos;
      cfg.seed = spec.seed;
      out.chaos = detail::run_chaos_impl(cfg, trace);
      return out;
    }
    case ScenarioKind::kScale: {
      ScaleScenarioConfig cfg = spec.scale;
      cfg.seed = spec.seed;
      cfg.threads = spec.threads;
      out.scale = detail::run_scale_impl(cfg, trace);
      return out;
    }
    case ScenarioKind::kMigration: {
      MigrationScenarioConfig cfg = spec.migration;
      cfg.seed = spec.seed;
      out.migration = detail::run_migration_impl(cfg, trace);
      return out;
    }
  }
  throw std::invalid_argument{"exp::run: bad scenario kind"};
}

}  // namespace prebake::exp
