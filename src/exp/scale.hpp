// Production-scale trace scenario (DESIGN.md §6h): a synthetic fleet of
// thousands of deployed functions under a streaming Zipf workload, driven
// through the cluster Platform on one simulation. Sustains 10^6-10^7
// requests in bounded memory (the replay aggregates; nothing grows with the
// trace) and parameterizes the keep-alive policy study:
//
//   kPrebaked  — snapshot restore on every cold start, short idle reclaim
//   kKeepAlive — Vanilla starts, fixed long keep-alive (the 10-minute
//                idle timeout public platforms use; Wang et al.)
//   kWarmPool  — Vanilla starts, short reclaim, but a min-idle pool of one
//                replica per function (Lin & Glikson)
//   kCowClone  — prebaked + content-addressed page store: cold starts
//                COW-clone the node's frozen template (DESIGN.md §6f)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/function_spec.hpp"
#include "sim/time.hpp"

namespace prebake::exp {

enum class KeepAlivePolicy { kPrebaked, kKeepAlive, kWarmPool, kCowClone };
const char* keep_alive_policy_name(KeepAlivePolicy policy);

struct ScaleScenarioConfig {
  // Fleet shape: functions named "fn-<rank>", rank 0 hottest.
  std::uint32_t functions = 200;
  // Arrival budget: the stream stops after this many arrivals.
  std::uint64_t requests = 100'000;
  double rate_hz = 50.0;  // aggregate arrival rate across the fleet
  double zipf_s = 1.0;    // popularity skew
  // peak_rate_hz > rate_hz adds a diurnal swing with `period`.
  double peak_rate_hz = 0.0;
  sim::Duration period = sim::Duration::seconds(3600);

  KeepAlivePolicy policy = KeepAlivePolicy::kPrebaked;
  // Idle timeout under kKeepAlive; every other policy reclaims after
  // reclaim_idle.
  sim::Duration keep_alive = sim::Duration::seconds(600);
  sim::Duration reclaim_idle = sim::Duration::seconds(60);

  std::uint32_t nodes = 8;
  std::uint32_t cpus_per_node = 0;  // 0 = uncapped node CPU timelines
  std::uint64_t node_mem_bytes = 64ull << 30;

  std::uint64_t seed = 42;
  // Accepted for ScenarioSpec symmetry. The scenario is one simulation and
  // is deterministic at any thread count by construction; sweeps
  // parallelize across cells, not within one.
  int threads = 0;
  // Keep the O(requests) per-request metrics vector (tests only).
  bool keep_request_metrics = false;
};

struct ScaleFunctionReport {
  std::string function;
  std::uint64_t requests = 0;
  std::uint64_t cold_starts = 0;
};

struct ScaleScenarioResult {
  std::uint64_t requests = 0;  // arrivals issued
  std::uint64_t responses_ok = 0;
  std::uint64_t rejected = 0;         // queue-rejected (503)
  std::uint64_t fallback_served = 0;  // served via Vanilla fallback
  std::uint64_t cold_starts = 0;
  std::uint64_t replicas_started = 0;
  std::uint64_t replicas_reclaimed = 0;
  double cold_start_rate = 0.0;  // cold_starts / responses_ok

  double total_p50_ms = 0.0;
  double total_p99_ms = 0.0;
  double total_p999_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double cold_startup_p50_ms = 0.0;
  double cold_startup_p99_ms = 0.0;

  // Integral of placed replica memory over the run (provider cost axis).
  double mem_byte_seconds = 0.0;
  double makespan_s = 0.0;

  // Memory-bound witnesses: engine pending events and resident replicas
  // must track the active set (replicas + warm pools + in-flight timers),
  // never the trace length.
  std::size_t peak_pending_events = 0;
  std::size_t peak_replicas = 0;

  std::uint32_t functions_deployed = 0;
  std::uint32_t functions_invoked = 0;
  std::vector<ScaleFunctionReport> hottest;  // top 10 by request count
};

// The per-rank member of the synthetic fleet: a lean noop-handler service
// (small class set, millisecond warm path) so host time goes to the
// platform machinery under test, not to handler work.
rt::FunctionSpec scale_function_spec(std::uint32_t rank,
                                     const std::string& name_prefix = "fn-");

ScaleScenarioResult run_scale_scenario(const ScaleScenarioConfig& config);

}  // namespace prebake::exp
