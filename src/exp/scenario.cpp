#include "exp/scenario.hpp"

#include <memory>
#include <stdexcept>

#include "faas/builder.hpp"
#include "sim/simulation.hpp"

namespace prebake::exp {

const char* technique_name(Technique t) {
  switch (t) {
    case Technique::kVanilla: return "Vanilla";
    case Technique::kPrebakeNoWarmup: return "PB-NOWarmup";
    case Technique::kPrebakeWarmup: return "PB-Warmup";
    case Technique::kZygoteFork: return "Zygote-Fork";
  }
  throw std::invalid_argument{"technique_name: bad technique"};
}

namespace {

// One self-contained simulated testbed.
struct Testbed {
  sim::Simulation sim;
  os::Kernel kernel;
  funcs::SharedAssets assets;
  core::StartupService startup;
  faas::FunctionBuilder builder;

  explicit Testbed(const rt::RuntimeCosts& runtime)
      : kernel{sim, testbed_costs()},
        startup{kernel, runtime, assets},
        builder{kernel, startup} {}
};

core::ReplicaProcess start_replica(Testbed& bed, const rt::FunctionSpec& spec,
                                   Technique technique,
                                   const core::BakedSnapshot* snapshot,
                                   sim::Rng rng) {
  if (technique == Technique::kVanilla)
    return bed.startup.start_vanilla(spec, std::move(rng));
  if (technique == Technique::kZygoteFork)
    return bed.startup.start_zygote_fork(spec, std::move(rng));
  return bed.startup.start_prebaked(spec, snapshot->images,
                                    snapshot->fs_prefix, std::move(rng));
}

}  // namespace

ScenarioResult run_startup_scenario(const ScenarioConfig& config) {
  Testbed bed{config.runtime.value_or(testbed_runtime())};
  sim::Rng root{config.seed};

  // Build the function artifacts; bake the snapshot if needed.
  std::optional<core::PrebakeConfig> prebake;
  if (config.technique == Technique::kPrebakeNoWarmup ||
      config.technique == Technique::kPrebakeWarmup) {
    core::PrebakeConfig cfg;
    cfg.policy = config.technique == Technique::kPrebakeWarmup
                     ? core::SnapshotPolicy::warmup(config.warmup_requests)
                     : core::SnapshotPolicy::no_warmup();
    prebake = cfg;
  }
  faas::BuildResult built =
      bed.builder.build(config.spec, prebake, root.child(1));
  const rt::FunctionSpec& spec = built.spec;
  const core::BakedSnapshot* snapshot =
      built.snapshot.has_value() ? &*built.snapshot : nullptr;

  ScenarioResult result;
  if (snapshot != nullptr) {
    result.snapshot_nominal_bytes = snapshot->images.nominal_total();
    result.bake_time_ms = snapshot->build_time.to_millis();
  }

  // Warm the OS page cache with one throwaway run: the paper's testbed keeps
  // its page cache across the 200 repetitions (only the runtime and load
  // generator are restarted), so repetition 1 must not be a cold-disk
  // outlier.
  {
    core::ReplicaProcess warm =
        start_replica(bed, spec, config.technique, snapshot, root.child(2));
    funcs::Request req = funcs::sample_request(spec.handler_id);
    (void)warm.runtime->handle(req);
    bed.startup.reclaim(warm);
  }

  const funcs::Request first_request = funcs::sample_request(spec.handler_id);
  result.breakdowns.reserve(static_cast<std::size_t>(config.repetitions));
  result.startup_ms.reserve(static_cast<std::size_t>(config.repetitions));

  for (int rep = 0; rep < config.repetitions; ++rep) {
    sim::Rng rng = root.child(100 + static_cast<std::uint64_t>(rep));
    const sim::TimePoint t0 = bed.sim.now();
    core::ReplicaProcess replica =
        start_replica(bed, spec, config.technique, snapshot, std::move(rng));

    if (config.measure_first_response) {
      // The load generator holds the first request until the replica is
      // ready, then start-up is measured to the first response.
      const funcs::Response res = replica.runtime->handle(first_request);
      if (!res.ok()) throw std::runtime_error{"scenario: request failed"};
      replica.breakdown.total = bed.sim.now() - t0;
    }

    result.breakdowns.push_back(replica.breakdown);
    result.startup_ms.push_back(replica.breakdown.total.to_millis());
    bed.startup.reclaim(replica);
  }
  return result;
}

ServiceScenarioResult run_service_scenario(const rt::FunctionSpec& raw_spec,
                                           Technique technique, int requests,
                                           std::uint64_t seed) {
  Testbed bed{testbed_runtime()};
  sim::Rng root{seed};

  std::optional<core::PrebakeConfig> prebake;
  if (technique == Technique::kPrebakeNoWarmup ||
      technique == Technique::kPrebakeWarmup) {
    core::PrebakeConfig cfg;
    cfg.policy = technique == Technique::kPrebakeWarmup
                     ? core::SnapshotPolicy::warmup(1)
                     : core::SnapshotPolicy::no_warmup();
    prebake = cfg;
  }
  faas::BuildResult built = bed.builder.build(raw_spec, prebake, root.child(1));
  const core::BakedSnapshot* snapshot =
      built.snapshot.has_value() ? &*built.snapshot : nullptr;

  core::ReplicaProcess replica = start_replica(bed, built.spec, technique,
                                               snapshot, root.child(3));

  ServiceScenarioResult result;
  result.startup_ms = replica.breakdown.total.to_millis();
  const funcs::Request req = funcs::sample_request(built.spec.handler_id);
  result.service_ms.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const funcs::Response res = replica.runtime->handle(req);
    if (!res.ok()) throw std::runtime_error{"service scenario: request failed"};
    result.service_ms.push_back(
        replica.runtime->last_service_time().to_millis());
    result.response_bodies.push_back(res.body);
  }
  bed.startup.reclaim(replica);
  return result;
}

}  // namespace prebake::exp
