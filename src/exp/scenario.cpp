#include "exp/scenario.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "exp/run.hpp"
#include "faas/builder.hpp"
#include "sim/simulation.hpp"
#include "util/thread_pool.hpp"

namespace prebake::exp {

const char* technique_name(Technique t) {
  switch (t) {
    case Technique::kVanilla: return "Vanilla";
    case Technique::kPrebakeNoWarmup: return "PB-NOWarmup";
    case Technique::kPrebakeWarmup: return "PB-Warmup";
    case Technique::kZygoteFork: return "Zygote-Fork";
  }
  throw std::invalid_argument{"technique_name: bad technique"};
}

namespace {

// Repetitions are measured in fixed blocks of kShardSize, each block on its
// own fresh testbed. The shard layout is a function of the repetition count alone —
// never of the thread count — which is what makes results bit-identical at
// any parallelism (each shard's testbed sees the same install + warm-up +
// rep sequence no matter which worker runs it).
constexpr int kShardSize = 25;

// Reserved RNG stream ids for the shared build and the per-shard warm-up
// run, far above any plausible repetition index.
constexpr std::uint64_t kBuildStream = std::uint64_t{1} << 40;
constexpr std::uint64_t kWarmStream = (std::uint64_t{1} << 40) + 1;

// One self-contained simulated testbed. Assets are shared across testbeds
// (and threads): decoded source images are immutable and identical for every
// replica of a function, and generating one costs real host time.
struct Testbed {
  sim::Simulation sim;
  os::Kernel kernel;
  core::StartupService startup;
  faas::FunctionBuilder builder;

  Testbed(const rt::RuntimeCosts& runtime, funcs::SharedAssets& assets)
      : kernel{sim, testbed_costs()},
        startup{kernel, runtime, assets},
        builder{kernel, startup} {}
};

// Asset cache shared by every scenario in the process: the resizer's source
// image is a pure function of (width, height, seed), so each figure sweep
// needs to generate it exactly once rather than once per cell.
funcs::SharedAssets& process_assets() {
  static funcs::SharedAssets assets;
  return assets;
}

core::ReplicaProcess start_replica(Testbed& bed, const rt::FunctionSpec& spec,
                                   Technique technique,
                                   const core::BakedSnapshot* snapshot,
                                   sim::Rng rng) {
  if (technique == Technique::kVanilla)
    return bed.startup.start_vanilla(spec, std::move(rng));
  if (technique == Technique::kZygoteFork)
    return bed.startup.start_zygote_fork(spec, std::move(rng));
  core::PrebakedStartOptions options;
  options.restore.fs_prefix = snapshot->fs_prefix;
  return bed.startup.start_prebaked(spec, snapshot->images, options,
                                    std::move(rng));
}

std::optional<core::PrebakeConfig> prebake_config(Technique technique,
                                                  std::uint32_t warmups) {
  if (technique != Technique::kPrebakeNoWarmup &&
      technique != Technique::kPrebakeWarmup)
    return std::nullopt;
  core::PrebakeConfig cfg;
  cfg.policy = technique == Technique::kPrebakeWarmup
                   ? core::SnapshotPolicy::warmup(warmups)
                   : core::SnapshotPolicy::no_warmup();
  return cfg;
}

// Warm the OS page cache with one throwaway run: the paper's testbed keeps
// its page cache across the 200 repetitions (only the runtime and load
// generator are restarted), so repetition 1 must not be a cold-disk
// outlier.
void warm_testbed_replica(Testbed& bed, const rt::FunctionSpec& spec,
                          Technique technique,
                          const core::BakedSnapshot* snapshot, sim::Rng rng) {
  core::ReplicaProcess warm =
      start_replica(bed, spec, technique, snapshot, std::move(rng));
  funcs::Request req = funcs::sample_request(spec.handler_id);
  (void)warm.runtime->handle(req);
  bed.startup.reclaim(warm);
}

// Same steady state, without the run. In a fresh testbed a throwaway
// replica leaves exactly one persistent trace: the per-file page-cache bit
// on everything it reads (the runtime binary on exec, the classpath archive
// on class loading, the init-I/O file during APPINIT; snapshot images are
// created warm by FunctionBuilder::install). Setting those bits directly
// yields bit-identical measurements and skips the replica's host-side work —
// notably the warm request's real image resize. The zygote path is the
// exception: it boots a persistent per-testbed zygote on first use, which
// only a real run can create.
void warm_testbed(Testbed& bed, const rt::FunctionSpec& spec,
                  Technique technique, const core::BakedSnapshot* snapshot,
                  sim::Rng rng) {
  if (technique == Technique::kZygoteFork) {
    warm_testbed_replica(bed, spec, technique, snapshot, std::move(rng));
    return;
  }
  os::FileSystem& fs = bed.kernel.fs();
  fs.warm(spec.runtime_binary);
  fs.warm(spec.classpath_archive);
  if (spec.init_io_bytes > 0 && !spec.init_io_path.empty() &&
      fs.exists(spec.init_io_path))
    fs.warm(spec.init_io_path);
}

// Trace track layout for the parallel startup runner (a pure function of
// the config, never the thread count): track 0 carries a synthesized
// "scenario" root, track 1 the build/bake testbed, track 2+s shard s.
constexpr std::uint32_t kBuildTrack = 1;
constexpr std::uint32_t kFirstShardTrack = 2;

}  // namespace

ScenarioResult detail::run_startup_impl(const ScenarioConfig& config,
                                        obs::TraceReport* trace) {
  const rt::RuntimeCosts runtime = config.runtime.value_or(testbed_runtime());
  funcs::SharedAssets& assets = process_assets();
  const obs::SpanId root_id = obs::make_span_id(0, 1);

  // Build the function artifacts once in a scratch testbed; bake the
  // snapshot if the technique needs one. Every shard installs this result
  // instead of repeating the (expensive) bake.
  faas::BuildResult built = [&] {
    Testbed scratch{runtime, assets};
    if (trace != nullptr) scratch.kernel.trace().enable(kBuildTrack, root_id);
    faas::BuildResult b = scratch.builder.build(
        config.spec, prebake_config(config.technique, config.warmup_requests),
        sim::Rng{sim::splitmix64(config.seed, kBuildStream)});
    if (trace != nullptr) trace->absorb(scratch.kernel.trace());
    return b;
  }();
  const rt::FunctionSpec& spec = built.spec;
  const core::BakedSnapshot* snapshot =
      built.snapshot.has_value() ? &*built.snapshot : nullptr;

  ScenarioResult result;
  if (snapshot != nullptr) {
    result.snapshot_nominal_bytes = snapshot->images.nominal_total();
    result.bake_time_ms = snapshot->build_time.to_millis();
  }

  const int reps = config.repetitions;
  if (reps > 0) {
    result.breakdowns.resize(static_cast<std::size_t>(reps));
    result.startup_ms.resize(static_cast<std::size_t>(reps));

    const funcs::Request first_request = funcs::sample_request(spec.handler_id);
    const std::size_t n_shards =
        (static_cast<std::size_t>(reps) + kShardSize - 1) / kShardSize;

    // Per-shard trace slots, filled inside parallel_for and merged in shard
    // order afterwards so the merged report never depends on scheduling.
    std::vector<obs::TraceReport> shard_traces(trace != nullptr ? n_shards : 0);

    util::parallel_for(
        n_shards,
        [&](std::size_t shard) {
          Testbed bed{runtime, assets};
          obs::Tracer& tr = bed.kernel.trace();
          if (trace != nullptr)
            tr.enable(kFirstShardTrack + static_cast<std::uint32_t>(shard),
                      root_id);
          bed.builder.install(built);
          warm_testbed(bed, spec, config.technique, snapshot,
                       sim::Rng{sim::splitmix64(config.seed, kWarmStream)});

          const int begin = static_cast<int>(shard) * kShardSize;
          const int end = std::min(begin + kShardSize, reps);
          for (int rep = begin; rep < end; ++rep) {
            sim::Rng rng{
                sim::splitmix64(config.seed, static_cast<std::uint64_t>(rep))};
            const sim::TimePoint t0 = bed.sim.now();
            obs::Span rep_span;
            if (tr.enabled()) {
              rep_span = tr.span("replica-start", "exp");
              rep_span.attr("rep", rep);
            }
            core::ReplicaProcess replica = start_replica(
                bed, spec, config.technique, snapshot, std::move(rng));

            if (config.measure_first_response) {
              // The load generator holds the first request until the replica
              // is ready, then start-up is measured to the first response.
              const funcs::Response res =
                  replica.runtime->handle(first_request);
              if (!res.ok())
                throw std::runtime_error{"scenario: request failed"};
              replica.breakdown.total = bed.sim.now() - t0;
            }
            rep_span.end();

            const auto slot = static_cast<std::size_t>(rep);
            result.breakdowns[slot] = replica.breakdown;
            result.startup_ms[slot] = replica.breakdown.total.to_millis();
            bed.startup.reclaim(replica);
          }
          if (trace != nullptr) shard_traces[shard].absorb(tr);
        },
        config.threads);

    if (trace != nullptr)
      for (obs::TraceReport& shard_trace : shard_traces) {
        trace->spans.insert(trace->spans.end(),
                            std::make_move_iterator(shard_trace.spans.begin()),
                            std::make_move_iterator(shard_trace.spans.end()));
        trace->metrics.merge_from(shard_trace.metrics);
      }
  }

  if (trace != nullptr) {
    // Synthesize the cross-track root. Every testbed runs its own sim clock
    // from 0, so the root spans [0, max end] of the merged records.
    obs::SpanRecord root;
    root.id = root_id;
    root.track = 0;
    root.seq = 1;
    root.start_ns = 0;
    root.end_ns = 0;
    for (const obs::SpanRecord& s : trace->spans)
      root.end_ns = std::max(root.end_ns, s.end_ns);
    root.name = "scenario";
    root.category = "exp";
    root.attrs = {{"kind", "startup"},
                  {"function", spec.name},
                  {"technique", technique_name(config.technique)},
                  {"repetitions", std::to_string(reps)}};
    trace->spans.push_back(std::move(root));
    trace->finalize();
  }
  return result;
}

ScenarioResult run_startup_scenario(const ScenarioConfig& config) {
  return run(ScenarioSpec::from(config)).startup;
}

ScenarioResult run_startup_scenario_reference(const ScenarioConfig& config) {
  funcs::SharedAssets assets;
  Testbed bed{config.runtime.value_or(testbed_runtime()), assets};
  sim::Rng root{config.seed};

  faas::BuildResult built = bed.builder.build(
      config.spec, prebake_config(config.technique, config.warmup_requests),
      root.child(1));
  const rt::FunctionSpec& spec = built.spec;
  const core::BakedSnapshot* snapshot =
      built.snapshot.has_value() ? &*built.snapshot : nullptr;

  ScenarioResult result;
  if (snapshot != nullptr) {
    result.snapshot_nominal_bytes = snapshot->images.nominal_total();
    result.bake_time_ms = snapshot->build_time.to_millis();
  }

  warm_testbed_replica(bed, spec, config.technique, snapshot, root.child(2));

  const funcs::Request first_request = funcs::sample_request(spec.handler_id);
  result.breakdowns.reserve(static_cast<std::size_t>(config.repetitions));
  result.startup_ms.reserve(static_cast<std::size_t>(config.repetitions));

  for (int rep = 0; rep < config.repetitions; ++rep) {
    sim::Rng rng = root.child(100 + static_cast<std::uint64_t>(rep));
    const sim::TimePoint t0 = bed.sim.now();
    core::ReplicaProcess replica =
        start_replica(bed, spec, config.technique, snapshot, std::move(rng));

    if (config.measure_first_response) {
      const funcs::Response res = replica.runtime->handle(first_request);
      if (!res.ok()) throw std::runtime_error{"scenario: request failed"};
      replica.breakdown.total = bed.sim.now() - t0;
    }

    result.breakdowns.push_back(replica.breakdown);
    result.startup_ms.push_back(replica.breakdown.total.to_millis());
    bed.startup.reclaim(replica);
  }
  return result;
}

ServiceScenarioResult run_service_scenario(const rt::FunctionSpec& raw_spec,
                                           Technique technique, int requests,
                                           std::uint64_t seed) {
  funcs::SharedAssets& assets = process_assets();
  Testbed bed{testbed_runtime(), assets};
  sim::Rng root{seed};

  std::optional<core::PrebakeConfig> prebake = prebake_config(technique, 1);
  faas::BuildResult built = bed.builder.build(raw_spec, prebake, root.child(1));
  const core::BakedSnapshot* snapshot =
      built.snapshot.has_value() ? &*built.snapshot : nullptr;

  core::ReplicaProcess replica = start_replica(bed, built.spec, technique,
                                               snapshot, root.child(3));

  ServiceScenarioResult result;
  result.startup_ms = replica.breakdown.total.to_millis();
  const funcs::Request req = funcs::sample_request(built.spec.handler_id);
  result.service_ms.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const funcs::Response res = replica.runtime->handle(req);
    if (!res.ok()) throw std::runtime_error{"service scenario: request failed"};
    result.service_ms.push_back(
        replica.runtime->last_service_time().to_millis());
    result.response_bodies.push_back(res.body);
  }
  bed.startup.reclaim(replica);
  return result;
}

ServiceScenarioResult run_service_scenario(const ServiceScenarioConfig& config) {
  return run_service_scenario(config.spec, config.technique, config.requests,
                              config.seed);
}

}  // namespace prebake::exp
