// Migration scenario: a warm replica serves a Poisson request stream while
// the platform live-migrates it between worker nodes via a pre-dump chain
// (DESIGN.md §6i). The scenario triggers the move mid-run — either a warm
// drain of the source node (evacuation) or a targeted migrate_replica — and
// measures the cutover blackout against the cost of destroying the replica
// and cold re-restoring it from the registry. An optional fault plan aims
// chaos at the migration machinery (source crash mid-pre-dump, destination
// crash mid-restore, corrupt chain links); the robustness claim under test
// is that every such fault degrades the migration, never the service.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "faas/platform.hpp"
#include "os/faults.hpp"

namespace prebake::exp {

struct MigrationScenarioConfig {
  // Cluster shape.
  std::uint32_t nodes = 3;
  std::uint32_t cpus_per_node = 2;
  std::uint64_t node_mem_bytes = 8ull << 30;
  faas::PlacementPolicy policy = faas::PlacementPolicy::kSnapshotLocality;
  // Registry-backed images: the cold re-restore baseline pays the remote
  // fetch, which is exactly the cost a live migration's shipped chain avoids.
  bool remote_registry = true;
  // Content-addressed node stores: per-link delta negotiation against the
  // destination's store (off = every link ships in full).
  bool page_store = true;
  // Keep the replica warm across the whole run; the scenario studies the
  // migration blackout, not idle reclamation.
  sim::Duration idle_timeout = sim::Duration::seconds(300);

  // Workload: one function, Poisson arrivals, each request dirtying this
  // many heap pages (the knob the downtime-vs-dirty-rate sweep turns). The
  // rate is high enough that several requests land inside each pre-dump
  // round, so the dirty-page knob actually re-dirties the chain.
  std::uint64_t request_dirty_pages = 0;
  double rate_hz = 50.0;
  sim::Duration duration = sim::Duration::seconds(120);
  std::uint64_t seed = 42;

  // The move. At `migrate_at`: drain_source ? drain the replica's node with
  // DrainMode::kMigrateWarm : migrate_replica(fn, kNoNode, to).
  sim::Duration migrate_at = sim::Duration::seconds(30);
  bool drain_source = true;
  faas::NodeId to = faas::kNoNode;  // explicit destination (kNoNode = pick)

  // Migration policy under test (rounds, convergence threshold, delta).
  faas::MigrationConfig migration{};

  // Fault plan, armed only after deploy + initial warm placement: the chaos
  // under study targets the migration machinery, not the first restore.
  os::FaultPlan faults;
  int restore_max_attempts = 3;
  sim::Duration restore_retry_backoff = sim::Duration::millis(5);
  sim::Duration node_recovery_delay = sim::Duration::seconds(30);
  // Health-EWMA evacuation (0 = off); exercised by the chaos tests.
  double evacuation_threshold = 0.0;
  sim::Duration evacuation_cooldown = sim::Duration::seconds(60);
};

struct MigrationScenarioResult {
  std::uint64_t requests = 0;
  std::uint64_t answered = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t rejected = 0;
  double availability = 0.0;  // responses_ok / requests

  // Migration accounting (mirrors PlatformStats).
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_aborted = 0;
  std::uint64_t migration_rounds = 0;
  std::uint64_t migration_full_dumps = 0;
  std::uint64_t migration_dest_retries = 0;
  std::uint64_t migration_precopy_bytes = 0;
  std::uint64_t migration_final_bytes = 0;
  // Mean cutover blackout per completed migration (0 when none completed).
  double downtime_ms = 0.0;
  // Baseline: start-up latency of a cold re-restore of the same function
  // from the registry on an otherwise idle node (what destroying the warm
  // replica instead of migrating it would cost the next request).
  double cold_restore_ms = 0.0;

  std::uint64_t evacuations = 0;
  std::uint64_t rebalance_moves = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t replicas_started = 0;

  // Warmth ledger summed over nodes: replicas whose warm state survived the
  // move vs. replicas/template pages destroyed by drain or failure.
  std::uint64_t warmth_replicas_migrated = 0;
  std::uint64_t warmth_replicas_destroyed = 0;
  std::uint64_t warmth_template_pages_destroyed = 0;

  // Where the replica lived before and after (kNoNode when unresolved).
  faas::NodeId source_node = faas::kNoNode;
  faas::NodeId final_node = faas::kNoNode;

  double total_p50_ms = 0.0;
  double total_p95_ms = 0.0;

  std::uint64_t faults_injected = 0;
  std::vector<std::pair<std::string, std::uint64_t>> fired_by_site;
};

MigrationScenarioResult run_migration_scenario(
    const MigrationScenarioConfig& config);

}  // namespace prebake::exp
