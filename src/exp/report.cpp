#include "exp/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace prebake::exp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_{std::move(headers)} {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument{"TextTable: cell count != header count"};
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return out.str();
}

std::string fmt_ms(double ms, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ms", precision, ms);
  return buf;
}

std::string fmt_interval(const stats::Interval& iv, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "(%.*f; %.*f)", precision, iv.lo, precision,
                iv.hi);
  return buf;
}

std::string fmt_percent(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string fmt_mib(std::uint64_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f MiB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

std::string ascii_bar(double value, double max_value, int width) {
  if (max_value <= 0.0) max_value = 1.0;
  const int fill = std::clamp(
      static_cast<int>(value / max_value * width + 0.5), 0, width);
  return std::string(static_cast<std::size_t>(fill), '#') +
         std::string(static_cast<std::size_t>(width - fill), ' ');
}

std::string render_ecdf(std::span<const double> sample,
                        std::span<const double> quantiles) {
  std::ostringstream out;
  char buf[128];
  for (double q : quantiles) {
    const double v = stats::percentile(sample, q);
    std::snprintf(buf, sizeof buf, "  p%-5.1f %10.3f ms\n", q * 100.0, v);
    out << buf;
  }
  return out.str();
}

}  // namespace prebake::exp
