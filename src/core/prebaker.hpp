// Build-time snapshot generation — the heart of the prebaking technique.
//
// As Section 3.1 argues, the Function Builder is the natural place to
// trigger the snapshot: it runs before the function is callable, so baking
// adds no latency to any invocation, and the same snapshot can seed every
// future replica because they all start from identical state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/snapshot_policy.hpp"
#include "core/startup.hpp"
#include "criu/dump.hpp"

namespace prebake::core {

struct PrebakeConfig {
  SnapshotPolicy policy = SnapshotPolicy::no_warmup();
  criu::PayloadMode payload_mode = criu::PayloadMode::kDigest;
  // Root of the snapshot repository in the simulated filesystem.
  std::string store_root = "/var/lib/prebake/";
  // Run the dump with only CAP_CHECKPOINT_RESTORE (the unprivileged mode of
  // recent CRIU, [11] in the paper) instead of full CAP_SYS_ADMIN.
  bool unprivileged = false;
};

struct BakedSnapshot {
  std::string function_name;
  SnapshotPolicy policy;
  criu::ImageDir images;
  criu::StatsEntry stats;
  std::string fs_prefix;      // where the image files live
  sim::Duration build_time;   // full bake: start + warm + dump + persist
};

class Prebaker {
 public:
  explicit Prebaker(StartupService& startup) : startup_{&startup} {}

  // Start the function the Vanilla way, optionally serve `policy` warm-up
  // requests through the real handler, then checkpoint it into an image
  // directory persisted under `store_root/<name>/<policy>/`.
  BakedSnapshot bake(const rt::FunctionSpec& spec, const PrebakeConfig& config,
                     sim::Rng rng);

 private:
  StartupService* startup_;
};

// Snapshot registry keyed by (function, policy) — the Function Registry's
// snapshot side. Optionally capacity-bounded with LRU eviction: Section 7
// raises "checkpoint/restore as a service" with "even bigger function code
// sizes", where a node cannot hold every snapshot at once; a missing
// snapshot degrades to a Vanilla start (see Platform's restore fallback),
// never to an outage.
class SnapshotStore {
 public:
  void put(BakedSnapshot snapshot);
  // Throws std::out_of_range on miss (and counts it). Hits refresh LRU
  // recency.
  const BakedSnapshot& get(const std::string& function_name,
                           const SnapshotPolicy& policy) const;
  // Mutable access for administrative operations (re-bake, fault injection
  // in tests).
  BakedSnapshot& get_mutable(const std::string& function_name,
                             const SnapshotPolicy& policy);
  bool has(const std::string& function_name, const SnapshotPolicy& policy) const;
  std::size_t size() const { return snapshots_.size(); }

  // Capacity in snapshot bytes (nominal); 0 = unlimited. Shrinking evicts
  // immediately, least-recently-used first.
  void set_capacity(std::uint64_t bytes);
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t stored_bytes() const;

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  const CacheStats& cache_stats() const { return stats_; }

 private:
  void touch(const std::string& key) const;
  void evict_to_fit();
  static std::string key(const std::string& name, const SnapshotPolicy& policy) {
    return name + "/" + policy.tag();
  }

  std::map<std::string, BakedSnapshot> snapshots_;
  // LRU order: front = least recently used.
  mutable std::vector<std::string> lru_;
  std::uint64_t capacity_ = 0;
  mutable CacheStats stats_;
};

}  // namespace prebake::core
