// Starting function replicas: the Vanilla fork-exec path versus the
// prebaking restore path. This is the measurement surface for every start-up
// experiment in the paper.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "criu/image.hpp"
#include "criu/restore.hpp"
#include "funcs/handlers.hpp"
#include "os/kernel.hpp"
#include "rt/runtime.hpp"

namespace prebake::core {

// Phase breakdown, matching the paper's Figure 4 instrumentation: CLONE,
// EXEC, RTS (exec end -> main()), APPINIT (main() -> ready). For prebaked
// starts the paper folds everything into APPINIT ("prebaking brings the RTS
// down to 0 ms"); we additionally expose the raw restore time.
struct StartupBreakdown {
  sim::Duration clone_time;
  sim::Duration exec_time;
  sim::Duration rts_time;
  sim::Duration appinit_time;
  sim::Duration restore_time;  // prebake only: CRIU restore proper
  sim::Duration total;
  // Resilience accounting (prebake only). `restore_attempts` counts restore
  // tries (1 on the happy path, 0 for vanilla/zygote starts); `fault_time`
  // is the time burned in failed attempts plus retry backoff before the
  // start succeeded; `fell_back_to_vanilla` marks a start whose restore
  // budget ran out and which completed via the Vanilla path instead.
  std::uint32_t restore_attempts = 0;
  bool fell_back_to_vanilla = false;
  sim::Duration fault_time;

  // The paper's stacked view: prebake folds restore+fixups into APPINIT.
  sim::Duration appinit_stacked() const { return appinit_time + restore_time; }
};

struct ReplicaProcess {
  os::Pid pid = os::kNoPid;
  std::unique_ptr<rt::ManagedRuntime> runtime;
  StartupBreakdown breakdown;
  // Present iff the replica was restored with lazy_pages: the uffd server
  // holding its not-yet-faulted pages. The platform drains it on first use.
  std::shared_ptr<criu::LazyPagesServer> lazy_server;
  // Bytes the restore pulled from a remote snapshot registry (0 unless
  // remote_fetch was set and the node-local cache was cold).
  std::uint64_t remote_bytes_fetched = 0;
};

// Knobs for the prebaking path beyond the legacy positional arguments. The
// cluster layer uses these to express per-node image locality (fs_prefix
// points at a node-local path, remote_fetch charges the registry transfer on
// a cache miss) and post-copy restores.
// How hard to fight for a restore before giving up. The defaults reproduce
// the legacy behavior exactly: one attempt, failure propagates to the
// caller, nothing extra is charged.
struct RestorePolicy {
  // Restore tries against the snapshot. Only transient errors (device
  // errors, aborted fetches, corrupt read copies) are retried; a truncated
  // on-disk image or a permission error fails every attempt identically and
  // short-circuits.
  int max_attempts = 1;
  // Sleep backoff * attempt-number between tries (linear backoff).
  sim::Duration retry_backoff = sim::Duration::millis(5);
  // Give up retrying once this much simulated time has elapsed since the
  // start began. Zero = unbounded.
  sim::Duration deadline{};
  // When the restore budget is exhausted, complete the start via the
  // Vanilla path instead of throwing (recorded in StartupBreakdown).
  bool fallback_to_vanilla = false;
};

struct PrebakedStartOptions {
  std::string fs_prefix;       // "" = images never persisted
  double io_contention = 1.0;  // N concurrent restores sharing storage
  bool in_memory = false;      // images pinned in page cache
  bool remote_fetch = false;   // first uncached read pays network bandwidth
  bool lazy_pages = false;     // post-copy (uffd) restore
  double lazy_working_set = 0.25;
  RestorePolicy policy;        // retry / deadline / fallback behavior
  // Passed through to RestoreOptions: registry-fetch retry budget.
  int fetch_max_attempts = 3;
  sim::Duration fetch_retry_backoff = sim::Duration::millis(10);
};

class StartupService {
 public:
  StartupService(os::Kernel& kernel, rt::RuntimeCosts costs,
                 funcs::SharedAssets& assets);

  // The Vanilla path: clone + exec + runtime bootstrap + app init.
  ReplicaProcess start_vanilla(const rt::FunctionSpec& spec, sim::Rng rng);

  // The SOCK-style zygote path [18,19]: fork a pre-booted runtime process
  // (COW) and run only app_init in the child. The zygote itself is created
  // lazily per runtime binary — a deploy-time cost, like baking a snapshot.
  // Skips CLONE(exec)+RTS but, unlike prebaking, still pays APPINIT and the
  // I/O-heavy initialization SOCK does not address (paper Section 6).
  ReplicaProcess start_zygote_fork(const rt::FunctionSpec& spec, sim::Rng rng);

  // The prebaking path: CRIU-restore the snapshot, re-attach the runtime.
  // `fs_prefix` is where the image files live in the simulated filesystem
  // ("" if the snapshot was never persisted). `io_contention` models N
  // concurrent restores sharing storage. Restore failures surface as typed
  // criu::RestoreError from both overloads (the positional one delegates to
  // the options overload, so the two behave identically) unless the policy
  // requests retries or Vanilla fallback.
  ReplicaProcess start_prebaked(const rt::FunctionSpec& spec,
                                const criu::ImageDir& images,
                                const std::string& fs_prefix, sim::Rng rng,
                                double io_contention = 1.0,
                                bool in_memory_images = false);

  // Options-struct variant; the positional overload delegates here.
  ReplicaProcess start_prebaked(const rt::FunctionSpec& spec,
                                const criu::ImageDir& images,
                                const PrebakedStartOptions& options,
                                sim::Rng rng);

  os::Pid launcher_pid() const { return launcher_; }
  os::Kernel& kernel() { return *kernel_; }
  const rt::RuntimeCosts& runtime_costs() const { return costs_; }
  funcs::SharedAssets& assets() { return *assets_; }

  // Tear down a replica (platform reclaim).
  void reclaim(ReplicaProcess& replica);

 private:
  os::Pid ensure_zygote(const rt::FunctionSpec& spec);

  os::Kernel* kernel_;
  rt::RuntimeCosts costs_;
  funcs::SharedAssets* assets_;
  os::Pid launcher_ = os::kNoPid;  // the deployer/watchdog parent process
  // One booted zygote per runtime binary (created on first use).
  std::map<std::string, os::Pid> zygotes_;
};

}  // namespace prebake::core
