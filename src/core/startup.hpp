// Starting function replicas: the Vanilla fork-exec path versus the
// prebaking restore path. This is the measurement surface for every start-up
// experiment in the paper.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "criu/image.hpp"
#include "criu/restore.hpp"
#include "funcs/handlers.hpp"
#include "obs/tracer.hpp"
#include "os/kernel.hpp"
#include "rt/runtime.hpp"

namespace prebake::core {

// Phase breakdown, matching the paper's Figure 4 instrumentation: CLONE,
// EXEC, RTS (exec end -> main()), APPINIT (main() -> ready). For prebaked
// starts the paper folds everything into APPINIT ("prebaking brings the RTS
// down to 0 ms"); we additionally expose the raw restore time.
struct StartupBreakdown {
  sim::Duration clone_time;
  sim::Duration exec_time;
  sim::Duration rts_time;
  sim::Duration appinit_time;
  sim::Duration restore_time;  // prebake only: CRIU restore proper
  sim::Duration total;
  // Resilience accounting (prebake only). `restore_attempts` counts restore
  // tries (1 on the happy path, 0 for vanilla/zygote starts); `fault_time`
  // is the time burned in failed attempts plus retry backoff before the
  // start succeeded; `fell_back_to_vanilla` marks a start whose restore
  // budget ran out and which completed via the Vanilla path instead.
  std::uint32_t restore_attempts = 0;
  bool fell_back_to_vanilla = false;
  sim::Duration fault_time;
  // Id of the "start.*" span recorded for this start, linking the breakdown
  // to its trace (0 when the kernel's tracer was disabled).
  obs::SpanId span_id = 0;

  // The paper's stacked view: prebake folds restore+fixups into APPINIT.
  sim::Duration appinit_stacked() const { return appinit_time + restore_time; }
};

struct ReplicaProcess {
  os::Pid pid = os::kNoPid;
  std::unique_ptr<rt::ManagedRuntime> runtime;
  StartupBreakdown breakdown;
  // Present iff the replica was restored under a non-eager paging mode: the
  // uffd server holding its not-yet-faulted pages. The platform pages it in
  // on first use (all of it for lazy, the demand set for working-set modes).
  std::shared_ptr<criu::LazyPagesServer> lazy_server;
  // Which paging mode the restore ran under (kEager for vanilla/zygote
  // starts and restore-less paths).
  criu::PagingMode paging_mode = criu::PagingMode::kEager;
  // Working-set restore accounting (DESIGN.md §6j). The recorder is present
  // iff this replica is capturing its first invocation's working set; the
  // platform closes it (criu::finish_ws_recording) after that invocation.
  std::shared_ptr<criu::WsRecorder> ws_recorder;
  std::uint64_t ws_prefetched_pages = 0;
  bool ws_fallback = false;
  criu::RestoreErrorKind ws_fallback_kind = criu::RestoreErrorKind::kMissingImage;
  // Bytes the restore pulled from a remote snapshot registry (0 unless
  // remote_fetch was set and the node-local cache was cold).
  std::uint64_t remote_bytes_fetched = 0;
  // Page-store accounting (zero / false unless the restore ran with a
  // node-local content-addressed store attached — see criu::PageStore).
  std::uint64_t store_hit_pages = 0;
  std::uint64_t store_delta_bytes = 0;
  bool template_clone = false;
  bool template_materialized = false;
};

// How hard to fight for a restore before giving up. The defaults reproduce
// the legacy behavior exactly: one attempt, failure propagates to the
// caller, nothing extra is charged.
struct RestorePolicy {
  // Restore tries against the snapshot. Only transient errors (device
  // errors, aborted fetches, corrupt read copies) are retried; a truncated
  // on-disk image or a permission error fails every attempt identically and
  // short-circuits.
  int max_attempts = 1;
  // Sleep backoff * attempt-number between tries (linear backoff).
  sim::Duration retry_backoff = sim::Duration::millis(5);
  // Give up retrying once this much simulated time has elapsed since the
  // start began. Zero = unbounded.
  sim::Duration deadline{};
  // When the restore budget is exhausted, complete the start via the
  // Vanilla path instead of throwing (recorded in StartupBreakdown).
  bool fallback_to_vanilla = false;
};

// Everything a prebaked start can be asked to do, in one struct. `restore`
// is the single source of truth for the restore-side knobs (fs_prefix,
// io_contention, in_memory, remote_fetch, the PagingPolicy,
// registry-fetch retry budget — see criu::RestoreOptions) and is handed to
// the Restorer as-is, except that the service always forces
// restore_original_pid=false and runs CRIU with the launcher's capabilities:
// those belong to the deployment, not the caller. `policy` governs the
// retry / deadline / Vanilla-fallback behavior around the restore.
//
// Designated-initializer friendly:
//   startup.start_prebaked(spec, images,
//                          {.restore = {.io_contention = 4.0,
//                                       .fs_prefix = "/node/snap"},
//                           .policy = {.max_attempts = 3}},
//                          rng);
struct PrebakedStartOptions {
  criu::RestoreOptions restore;
  RestorePolicy policy;  // retry / deadline / fallback behavior
};

class StartupService {
 public:
  StartupService(os::Kernel& kernel, rt::RuntimeCosts costs,
                 funcs::SharedAssets& assets);

  // The Vanilla path: clone + exec + runtime bootstrap + app init.
  ReplicaProcess start_vanilla(const rt::FunctionSpec& spec, sim::Rng rng);

  // The SOCK-style zygote path [18,19]: fork a pre-booted runtime process
  // (COW) and run only app_init in the child. The zygote itself is created
  // lazily per runtime binary — a deploy-time cost, like baking a snapshot.
  // Skips CLONE(exec)+RTS but, unlike prebaking, still pays APPINIT and the
  // I/O-heavy initialization SOCK does not address (paper Section 6).
  ReplicaProcess start_zygote_fork(const rt::FunctionSpec& spec, sim::Rng rng);

  // The prebaking path: CRIU-restore the snapshot, re-attach the runtime.
  // This is the one canonical entry point; every knob lives on
  // PrebakedStartOptions. Restore failures surface as typed
  // criu::RestoreError unless options.policy requests retries or Vanilla
  // fallback.
  ReplicaProcess start_prebaked(const rt::FunctionSpec& spec,
                                const criu::ImageDir& images,
                                const PrebakedStartOptions& options,
                                sim::Rng rng);

  os::Pid launcher_pid() const { return launcher_; }
  os::Kernel& kernel() { return *kernel_; }
  const rt::RuntimeCosts& runtime_costs() const { return costs_; }
  funcs::SharedAssets& assets() { return *assets_; }

  // Tear down a replica (platform reclaim).
  void reclaim(ReplicaProcess& replica);

 private:
  os::Pid ensure_zygote(const rt::FunctionSpec& spec);

  os::Kernel* kernel_;
  rt::RuntimeCosts costs_;
  funcs::SharedAssets* assets_;
  os::Pid launcher_ = os::kNoPid;  // the deployer/watchdog parent process
  // One booted zygote per runtime binary (created on first use).
  std::map<std::string, os::Pid> zygotes_;
};

}  // namespace prebake::core
