#include "core/prebaker.hpp"

#include <stdexcept>
#include <utility>

namespace prebake::core {

BakedSnapshot Prebaker::bake(const rt::FunctionSpec& spec,
                             const PrebakeConfig& config, sim::Rng rng) {
  os::Kernel& k = startup_->kernel();
  const sim::TimePoint t0 = k.sim().now();

  // 1. Start the function exactly as the Vanilla path would.
  ReplicaProcess rep = startup_->start_vanilla(spec, rng.child(1));

  // 2. Warm it up: send real requests so the runtime loads and JIT-compiles
  // the request path (PB-Warmup).
  const funcs::Request warm_req = funcs::sample_request(spec.handler_id);
  for (std::uint32_t i = 0; i < config.policy.warmup_requests; ++i) {
    const funcs::Response res = rep.runtime->handle(warm_req);
    if (!res.ok())
      throw std::runtime_error{"prebake: warm-up request failed for " +
                               spec.name};
  }

  // 3. Checkpoint. The dump kills the baked process (its purpose is served);
  // the images persist under the store root.
  BakedSnapshot out;
  out.function_name = spec.name;
  out.policy = config.policy;
  out.fs_prefix = config.store_root + spec.name + "/" + config.policy.tag() + "/";

  criu::DumpOptions dump_opts;
  dump_opts.leave_running = false;
  dump_opts.payload_mode = config.payload_mode;
  dump_opts.fs_prefix = out.fs_prefix;
  dump_opts.warmup_requests = config.policy.warmup_requests;
  dump_opts.criu_caps = config.unprivileged
                            ? os::Cap::kCheckpointRestore
                            : os::Cap::kSysAdmin | os::Cap::kSysPtrace;

  criu::Dumper dumper{k};
  criu::DumpResult dumped = dumper.dump(rep.pid, dump_opts);
  rep.runtime.reset();
  rep.pid = os::kNoPid;

  out.images = std::move(dumped.images);
  out.stats = dumped.stats;
  out.build_time = k.sim().now() - t0;
  return out;
}

void SnapshotStore::put(BakedSnapshot snapshot) {
  const std::string k = key(snapshot.function_name, snapshot.policy);
  snapshots_[k] = std::move(snapshot);
  touch(k);
  evict_to_fit();
}

const BakedSnapshot& SnapshotStore::get(const std::string& function_name,
                                        const SnapshotPolicy& policy) const {
  const std::string k = key(function_name, policy);
  const auto it = snapshots_.find(k);
  if (it == snapshots_.end()) {
    ++stats_.misses;
    throw std::out_of_range{"SnapshotStore: no snapshot for " + k};
  }
  ++stats_.hits;
  touch(k);
  return it->second;
}

void SnapshotStore::touch(const std::string& k) const {
  std::erase(lru_, k);
  lru_.push_back(k);
}

std::uint64_t SnapshotStore::stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [k, snap] : snapshots_) total += snap.images.nominal_total();
  return total;
}

void SnapshotStore::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  evict_to_fit();
}

void SnapshotStore::evict_to_fit() {
  if (capacity_ == 0) return;
  while (stored_bytes() > capacity_ && lru_.size() > 1) {
    const std::string victim = lru_.front();
    lru_.erase(lru_.begin());
    snapshots_.erase(victim);
    ++stats_.evictions;
  }
}

BakedSnapshot& SnapshotStore::get_mutable(const std::string& function_name,
                                          const SnapshotPolicy& policy) {
  return const_cast<BakedSnapshot&>(
      std::as_const(*this).get(function_name, policy));
}

bool SnapshotStore::has(const std::string& function_name,
                        const SnapshotPolicy& policy) const {
  return snapshots_.contains(key(function_name, policy));
}

}  // namespace prebake::core
