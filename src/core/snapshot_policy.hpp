// Snapshot-point policies (Section 4.2.2, "Choosing The (Pre)Baking
// Ingredients").
//
// The paper shows the snapshot point is critical: baking right after the
// function is ready (PB-NOWarmup) removes the runtime start-up, while baking
// after at least one request (PB-Warmup) also bakes in the lazily loaded and
// JIT-compiled code, improving the speed-up from 127% to 404% (small
// functions) and from 121% to 1932% (big ones).
#pragma once

#include <cstdint>
#include <string>

namespace prebake::core {

struct SnapshotPolicy {
  // Number of warm-up requests to serve before checkpointing. 0 reproduces
  // PB-NOWarmup; >= 1 reproduces PB-Warmup.
  std::uint32_t warmup_requests = 0;

  static SnapshotPolicy no_warmup() { return SnapshotPolicy{0}; }
  static SnapshotPolicy warmup(std::uint32_t requests = 1) {
    return SnapshotPolicy{requests};
  }

  bool warmed() const { return warmup_requests > 0; }
  std::string tag() const {
    return warmup_requests == 0 ? "nowarmup"
                                : "warmup" + std::to_string(warmup_requests);
  }
};

}  // namespace prebake::core
