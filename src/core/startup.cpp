#include "core/startup.hpp"

#include <algorithm>
#include <stdexcept>

namespace prebake::core {

StartupService::StartupService(os::Kernel& kernel, rt::RuntimeCosts costs,
                               funcs::SharedAssets& assets)
    : kernel_{&kernel}, costs_{std::move(costs)}, assets_{&assets} {
  // The launcher models the platform-side parent (watchdog / deployer agent)
  // that fork-execs replicas. It holds the privileges CRIU needs.
  launcher_ = kernel_->clone_process(os::kNoPid);
  os::Process& launcher = kernel_->process(launcher_);
  launcher.set_name("replica-launcher");
  launcher.grant(os::Cap::kSysPtrace | os::Cap::kCheckpointRestore);
}

ReplicaProcess StartupService::start_vanilla(const rt::FunctionSpec& spec,
                                             sim::Rng rng) {
  os::Kernel& k = *kernel_;
  obs::Tracer& tr = k.trace();
  ReplicaProcess rep;
  const sim::TimePoint t0 = k.sim().now();

  obs::Span start_span = tr.span("start.vanilla", "core");
  start_span.attr("function", spec.name);

  // CLONE
  {
    obs::Span phase = tr.span("clone", "core.phase");
    rep.pid = k.clone_process(launcher_);
  }
  const sim::TimePoint t_clone = k.sim().now();

  // EXEC
  {
    obs::Span phase = tr.span("exec", "core.phase");
    phase.attr("binary", spec.runtime_binary);
    k.exec(rep.pid, spec.runtime_binary, {spec.runtime_binary, spec.name});
  }
  const sim::TimePoint t_exec = k.sim().now();

  // RTS + APPINIT
  rep.runtime = std::make_unique<rt::ManagedRuntime>(k, rep.pid, costs_, spec,
                                                     std::move(rng));
  {
    obs::Span phase = tr.span("rts", "core.phase");
    rep.runtime->bootstrap();
  }
  {
    obs::Span phase = tr.span("appinit", "core.phase");
    rep.runtime->app_init(*assets_);
  }
  const sim::TimePoint t_ready = k.sim().now();

  rep.breakdown.clone_time = t_clone - t0;
  rep.breakdown.exec_time = t_exec - t_clone;
  rep.breakdown.rts_time = rep.runtime->rts_time();
  rep.breakdown.appinit_time = rep.runtime->appinit_time();
  rep.breakdown.total = t_ready - t0;
  rep.breakdown.span_id = start_span.id();
  start_span.attr("total_ms", rep.breakdown.total.to_millis());
  return rep;
}

os::Pid StartupService::ensure_zygote(const rt::FunctionSpec& spec) {
  const auto it = zygotes_.find(spec.runtime_binary);
  if (it != zygotes_.end() && kernel_->alive(it->second)) return it->second;

  // Boot a generic runtime process once (deploy-time cost, like baking).
  obs::Span span = kernel_->trace().span("zygote.boot", "core");
  span.attr("binary", spec.runtime_binary);
  const os::Pid pid = kernel_->clone_process(launcher_);
  kernel_->exec(pid, spec.runtime_binary, {spec.runtime_binary, "--zygote"});
  rt::FunctionSpec generic;  // no function code: just the bare runtime
  generic.name = "zygote";
  generic.runtime_binary = spec.runtime_binary;
  rt::ManagedRuntime zygote_rt{*kernel_, pid, costs_, generic, sim::Rng{0x2790}};
  zygote_rt.bootstrap();
  zygotes_[spec.runtime_binary] = pid;
  return pid;
}

ReplicaProcess StartupService::start_zygote_fork(const rt::FunctionSpec& spec,
                                                 sim::Rng rng) {
  os::Kernel& k = *kernel_;
  obs::Tracer& tr = k.trace();
  const os::Pid zygote = ensure_zygote(spec);

  ReplicaProcess rep;
  const sim::TimePoint t0 = k.sim().now();

  obs::Span start_span = tr.span("start.zygote", "core");
  start_span.attr("function", spec.name);

  // fork(2) from the zygote: the booted runtime state arrives via COW.
  {
    obs::Span phase = tr.span("fork", "core.phase");
    rep.pid = k.clone_process(zygote);
  }
  const sim::TimePoint t_fork = k.sim().now();

  rep.runtime = std::make_unique<rt::ManagedRuntime>(
      rt::ManagedRuntime::attach_forked(k, rep.pid, costs_, spec,
                                        std::move(rng)));
  {
    obs::Span phase = tr.span("appinit", "core.phase");
    rep.runtime->app_init(*assets_);
  }
  const sim::TimePoint t_ready = k.sim().now();

  rep.breakdown.clone_time = t_fork - t0;
  rep.breakdown.exec_time = sim::Duration{};  // no exec: the image is shared
  rep.breakdown.rts_time = sim::Duration{};   // bootstrap ran in the zygote
  rep.breakdown.appinit_time = t_ready - t_fork;
  rep.breakdown.total = t_ready - t0;
  rep.breakdown.span_id = start_span.id();
  return rep;
}

ReplicaProcess StartupService::start_prebaked(const rt::FunctionSpec& spec,
                                              const criu::ImageDir& images,
                                              const PrebakedStartOptions& options,
                                              sim::Rng rng) {
  os::Kernel& k = *kernel_;
  obs::Tracer& tr = k.trace();
  ReplicaProcess rep;
  const sim::TimePoint t0 = k.sim().now();

  obs::Span start_span = tr.span("start.prebaked", "core");
  start_span.attr("function", spec.name);
  const criu::PagingPolicy paging = options.restore.effective_paging();
  if (paging.mode != criu::PagingMode::kEager)
    start_span.attr("paging", criu::paging_mode_name(paging.mode));
  if (options.restore.remote_fetch) start_span.attr("remote_fetch", "true");

  // The caller's restore knobs pass through untouched, but pid reuse and
  // privileges are the deployment's call: replicas are restored
  // concurrently, so the original pid cannot be reused, and CRIU runs with
  // the launcher's capabilities.
  criu::RestoreOptions opts = options.restore;
  opts.restore_original_pid = false;
  opts.criu_caps = k.process(launcher_).caps();

  const RestorePolicy& policy = options.policy;
  const int max_attempts = std::max(policy.max_attempts, 1);
  criu::Restorer restorer{k};
  criu::RestoreResult restored;
  for (int attempt = 1;; ++attempt) {
    rep.breakdown.restore_attempts = static_cast<std::uint32_t>(attempt);
    // The failed attempts and backoffs before this try are fault time.
    rep.breakdown.fault_time = k.sim().now() - t0;
    obs::Span attempt_span = tr.span("restore.attempt", "core");
    attempt_span.attr("attempt", attempt);
    try {
      restored = restorer.restore(images, opts);
      break;
    } catch (const criu::RestoreError& e) {
      attempt_span.attr("error", e.what());
      attempt_span.end();
      const bool past_deadline = policy.deadline > sim::Duration{} &&
                                 k.sim().now() - t0 >= policy.deadline;
      if (e.transient() && attempt < max_attempts && !past_deadline) {
        obs::Span backoff = tr.span("retry-backoff", "core");
        k.sim().advance(policy.retry_backoff * static_cast<double>(attempt));
        continue;
      }
      if (!policy.fallback_to_vanilla) throw;
      // The restore budget is spent; finish the start the slow-but-sure way.
      // The wasted attempts stay on the clock and in the breakdown.
      tr.count("core.restore_fallbacks");
      const std::uint32_t attempts = rep.breakdown.restore_attempts;
      const sim::Duration wasted = k.sim().now() - t0;
      rep = start_vanilla(spec, rng.child(1));
      rep.breakdown.restore_attempts = attempts;
      rep.breakdown.fell_back_to_vanilla = true;
      rep.breakdown.fault_time = wasted;
      rep.breakdown.total = k.sim().now() - t0;
      rep.breakdown.span_id = start_span.id();
      start_span.attr("fell_back_to_vanilla", "true");
      return rep;
    }
  }
  rep.pid = restored.pid;
  rep.lazy_server = restored.lazy_server;
  rep.paging_mode = paging.mode;
  rep.ws_recorder = restored.ws_recorder;
  rep.ws_prefetched_pages = restored.ws_prefetched_pages;
  rep.ws_fallback = restored.ws_fallback;
  rep.ws_fallback_kind = restored.ws_fallback_kind;
  rep.remote_bytes_fetched = restored.remote_bytes;
  rep.store_hit_pages = restored.store_hit_pages;
  rep.store_delta_bytes = restored.store_delta_bytes;
  rep.template_clone = restored.template_clone;
  rep.template_materialized = restored.template_materialized;
  if (restored.template_clone) start_span.attr("template_clone", "true");
  if (restored.ws_fallback)
    start_span.attr("ws_fallback",
                    criu::restore_error_name(restored.ws_fallback_kind));
  const sim::TimePoint t_restored = k.sim().now();

  // Learn how warm the image is from its stats entry.
  const criu::StatsEntry stats =
      criu::decode_stats(images.get("stats.img").bytes);
  {
    obs::Span phase = tr.span("appinit", "core.phase");
    rep.runtime = std::make_unique<rt::ManagedRuntime>(
        rt::ManagedRuntime::attach_restored(k, rep.pid, costs_, spec,
                                            std::move(rng),
                                            stats.warmup_requests > 0,
                                            *assets_));
  }
  const sim::TimePoint t_ready = k.sim().now();

  rep.breakdown.clone_time = sim::Duration{};
  rep.breakdown.exec_time = sim::Duration{};
  rep.breakdown.rts_time = sim::Duration{};  // "brings the RTS down to 0 ms"
  rep.breakdown.restore_time = t_restored - t0;
  rep.breakdown.appinit_time = t_ready - t_restored;
  rep.breakdown.total = t_ready - t0;
  rep.breakdown.span_id = start_span.id();
  start_span.attr("attempts",
                  static_cast<std::int64_t>(rep.breakdown.restore_attempts));
  return rep;
}

void StartupService::reclaim(ReplicaProcess& replica) {
  if (replica.pid == os::kNoPid) return;
  if (kernel_->alive(replica.pid)) {
    kernel_->kill_process(replica.pid);
    kernel_->reap(replica.pid);
  }
  replica.runtime.reset();
  replica.pid = os::kNoPid;
}

}  // namespace prebake::core
