// Content-addressed node-local page store (DESIGN.md §6f).
//
// Every dumped page is identified by its 64-bit content digest (the same
// hashes digest-mode images already carry). A node that keeps a store of the
// digests it has materialized can
//
//   * negotiate delta transfers with the snapshot registry: ship the digest
//     list first (one RTT + 8 bytes/page), then pull only the pages the node
//     is missing — a node that restored the JVM-base snapshot of one
//     function fetches only the app-delta of the next;
//   * keep one frozen *template* process per snapshot: the first restore on
//     a node materializes it, later replicas clone it with COW mappings
//     (Catalyzer's sandbox-fork), skipping image reads entirely;
//   * give the scheduler a byte-accurate locality signal (missing unique
//     bytes) instead of whole-file hit/miss.
//
// Records are refcounted: template registration pins its pages; eviction
// under a byte budget removes unpinned pages only, LRU first, so pinned
// pages can exceed the budget while their template lives (they are the
// template's RSS, resident regardless). Like every other container in the
// model, mutation is not thread-safe — each WorkerNode owns one store and
// each simulation runs its scenario single-threaded.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "os/page_source.hpp"
#include "os/process.hpp"

namespace prebake::criu {

struct PageStoreStats {
  // Delta negotiations: page occurrences already held locally vs pages that
  // had to cross the wire (unique within each transferred image).
  std::uint64_t hit_pages = 0;
  std::uint64_t miss_pages = 0;
  std::uint64_t delta_bytes = 0;   // page payload actually transferred
  std::uint64_t digest_bytes = 0;  // negotiation overhead (digest lists)
  std::uint64_t evicted_pages = 0;
  std::uint64_t template_clones = 0;
  std::uint64_t templates_materialized = 0;
};

class PageStore {
 public:
  // A frozen restore template: the process to clone replicas from, the
  // mapping from image VmaEntry ids to the template's VMA ids (clones share
  // those ids), and the pinned page digests of its snapshot chain.
  struct TemplateInfo {
    os::Pid pid = os::kNoPid;
    std::map<os::VmaId, os::VmaId> vma_map;
    std::vector<std::uint64_t> digests;
  };

  // --- content-addressed pages ---------------------------------------------
  bool contains(std::uint64_t digest) const { return pages_.contains(digest); }
  // Digests (unique within the list) the store does not hold — what a delta
  // transfer must move.
  std::uint64_t missing_unique_pages(
      std::span<const std::uint64_t> digests) const;
  std::uint64_t missing_unique_bytes(
      std::span<const std::uint64_t> digests) const {
    return missing_unique_pages(digests) * os::kPageSize;
  }
  // Record every digest as locally materialized (refcount unchanged — a page
  // enters unpinned and is pinned only by templates). Refreshes recency,
  // evicts unpinned overflow, returns how many digests were new.
  std::uint64_t insert(std::span<const std::uint64_t> digests);
  // Refcount ++/-- per digest occurrence (callers keep pin/unpin symmetric).
  void pin(std::span<const std::uint64_t> digests);
  void unpin(std::span<const std::uint64_t> digests);
  std::uint32_t refcount(std::uint64_t digest) const;

  // --- byte budget ----------------------------------------------------------
  // 0 = unbounded. Shrinking evicts unpinned pages immediately (LRU first);
  // pinned pages are never evicted and may exceed the budget.
  void set_capacity(std::uint64_t bytes);
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t stored_pages() const { return pages_.size(); }
  std::uint64_t stored_bytes() const { return pages_.size() * os::kPageSize; }

  // --- frozen templates -----------------------------------------------------
  bool has_template(const std::string& key) const {
    return templates_.contains(key);
  }
  const TemplateInfo* find_template(const std::string& key) const;
  // Pins (and inserts) the template's digests for its lifetime.
  void register_template(const std::string& key, TemplateInfo info);
  // Unpins the template's digests and forgets it. Returns the template pid
  // (kNoPid if the key was unknown); the caller owns killing/reaping it.
  os::Pid drop_template(const std::string& key);
  std::vector<os::Pid> drop_all_templates();
  std::size_t template_count() const { return templates_.size(); }
  // Pages pinned across all registered templates — the warmth a node crash
  // destroys (NodeStats::warmth_template_pages_destroyed accounting).
  std::uint64_t template_pages() const {
    std::uint64_t total = 0;
    for (const auto& [key, t] : templates_) total += t.digests.size();
    return total;
  }

  // Node crash: the store's RAM is gone. Drops every page record (templates
  // must have been dropped first); stats survive for reporting.
  void clear_pages();

  const PageStoreStats& stats() const { return stats_; }
  PageStoreStats& stats_mut() { return stats_; }

 private:
  struct PageRecord {
    std::uint32_t refcount = 0;  // pinning templates
    std::uint64_t tick = 0;      // recency for LRU eviction
  };

  void evict_to_fit();

  std::map<std::uint64_t, PageRecord> pages_;  // digest -> record
  std::map<std::string, TemplateInfo> templates_;
  std::uint64_t capacity_ = 0;  // bytes; 0 = unbounded
  std::uint64_t tick_ = 0;
  PageStoreStats stats_;
};

}  // namespace prebake::criu
