// Little-endian bounds-checked serialization primitives for image files.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace prebake::criu {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void pad(std::size_t n) { buf_.insert(buf_.end(), n, std::uint8_t{0}); }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_{data} {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str() {
    const std::uint32_t len = u32();
    require(len);
    std::string s{reinterpret_cast<const char*>(data_.data() + pos_), len};
    pos_ += len;
    return s;
  }
  std::vector<std::uint8_t> raw(std::size_t len) {
    require(len);
    std::vector<std::uint8_t> out{data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len)};
    pos_ += len;
    return out;
  }
  // Borrow `len` bytes without copying; the span aliases the Reader's input
  // buffer (the zero-copy decode path).
  std::span<const std::uint8_t> view(std::size_t len) {
    require(len);
    const std::span<const std::uint8_t> out = data_.subspan(pos_, len);
    pos_ += len;
    return out;
  }
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw std::runtime_error{"image truncated: short read"};
  }
  template <typename T>
  T take_le() {
    require(sizeof(T));
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    pos_ += sizeof(T);
    return v;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace prebake::criu
