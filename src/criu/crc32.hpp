// CRC-32 (IEEE 802.3 polynomial), used to integrity-check every record in
// the checkpoint image format.
#pragma once

#include <cstdint>
#include <span>

namespace prebake::criu {

std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

}  // namespace prebake::criu
