#include "criu/dedup.hpp"

namespace prebake::criu {

std::uint64_t DedupIndex::add(const ImageDir& images) {
  const PagesEntry pages = decode_pages(images.get("pages-1.img").bytes);
  std::uint64_t fresh = 0;
  for (const std::uint64_t digest : pages.digests) {
    auto [it, inserted] = pages_.emplace(digest, 0);
    ++it->second;
    if (inserted) {
      ++fresh;
      ++stats_.unique_pages;
    }
    ++stats_.total_pages;
  }
  return fresh;
}

std::uint32_t DedupIndex::refcount(std::uint64_t digest) const {
  const auto it = pages_.find(digest);
  return it == pages_.end() ? 0 : it->second;
}

}  // namespace prebake::criu
