#include "criu/dedup.hpp"

#include <stdexcept>

namespace prebake::criu {

namespace {

// Both add and remove walk the snapshot's page digests. The digest span is
// borrowed straight from the ImageDir decode cache (zero-copy, §6g), so
// indexing N replicas of a snapshot decodes its payload once and never
// copies the digest list.
std::span<const std::uint64_t> payload_digests(const ImageDir& images) {
  const ImageDir::Decoded& dec = images.decoded();
  if (!dec.pages)
    throw std::invalid_argument{"DedupIndex: snapshot has no pages-1.img"};
  return dec.pages->digests();
}

}  // namespace

std::uint64_t DedupIndex::add(const ImageDir& images) {
  std::uint64_t fresh = 0;
  for (const std::uint64_t digest : payload_digests(images)) {
    auto [it, inserted] = pages_.emplace(digest, 0);
    ++it->second;
    if (inserted) {
      ++fresh;
      ++stats_.unique_pages;
    }
    ++stats_.total_pages;
  }
  return fresh;
}

std::uint64_t DedupIndex::remove(const ImageDir& images) {
  std::uint64_t freed = 0;
  for (const std::uint64_t digest : payload_digests(images)) {
    const auto it = pages_.find(digest);
    if (it == pages_.end() || it->second == 0)
      throw std::logic_error{"DedupIndex::remove: refcount underflow"};
    --stats_.total_pages;
    if (--it->second == 0) {
      pages_.erase(it);
      --stats_.unique_pages;
      ++freed;
    }
  }
  return freed;
}

std::uint32_t DedupIndex::refcount(std::uint64_t digest) const {
  const auto it = pages_.find(digest);
  return it == pages_.end() ? 0 : it->second;
}

}  // namespace prebake::criu
