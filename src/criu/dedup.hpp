// Content-addressed page deduplication across snapshots.
//
// Replicas of different functions share most of their runtime base pages
// (the JVM heap right after bootstrap is identical for every Java function),
// so a snapshot store that indexes pages by content hash stores each unique
// page once. This is the storage-side optimization production snapshot
// systems layer on top of the paper's design; digest-mode images already
// carry the per-page hashes needed to build the index.
#pragma once

#include <cstdint>
#include <map>

#include "criu/image.hpp"

namespace prebake::criu {

struct DedupStats {
  std::uint64_t total_pages = 0;   // pages across all indexed snapshots
  std::uint64_t unique_pages = 0;  // distinct page contents
  std::uint64_t total_bytes() const { return total_pages * 4096; }
  std::uint64_t unique_bytes() const { return unique_pages * 4096; }
  std::uint64_t saved_bytes() const { return total_bytes() - unique_bytes(); }
  double dedup_ratio() const {
    return unique_pages == 0
               ? 1.0
               : static_cast<double>(total_pages) /
                     static_cast<double>(unique_pages);
  }
};

class DedupIndex {
 public:
  // Index every dumped page of a snapshot; returns how many of its pages
  // were new to the store.
  std::uint64_t add(const ImageDir& images);
  // Drop a snapshot from the index: decrement each of its pages' refcounts,
  // forgetting digests that reach zero. Returns how many unique page
  // contents left the store. Removing images that were never added corrupts
  // the counts, exactly like a double-free — callers keep add/remove paired.
  std::uint64_t remove(const ImageDir& images);

  const DedupStats& stats() const { return stats_; }
  // How many snapshots reference a given page digest (0 if unknown).
  std::uint32_t refcount(std::uint64_t digest) const;

 private:
  std::map<std::uint64_t, std::uint32_t> pages_;  // digest -> refcount
  DedupStats stats_;
};

}  // namespace prebake::criu
