#include "criu/crc32.hpp"

#include <array>
#include <cstring>

namespace prebake::criu {

namespace {

// Slice-by-8 (Intel/kernel technique): eight lookup tables let the loop fold
// 8 input bytes per iteration instead of 1. Table 0 is the classic
// byte-at-a-time table; table k extends a table-(k-1) entry by one more zero
// byte, so xoring one entry from each table advances the CRC over 8 bytes.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (std::size_t k = 1; k < 8; ++k)
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
  return t;
}
constexpr auto kTables = make_tables();

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  while (len >= 8) {
    const std::uint32_t lo = c ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
        kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFF] ^ kTables[2][(hi >> 8) & 0xFF] ^
        kTables[1][(hi >> 16) & 0xFF] ^ kTables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (; len > 0; ++p, --len) c = kTables[0][(c ^ *p) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace prebake::criu
