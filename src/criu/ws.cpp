#include "criu/ws.hpp"

namespace prebake::criu {

WorkingSetImage finish_ws_recording(os::Kernel& kernel,
                                    const WsRecorder& rec) {
  std::map<os::VmaId, os::PageBitmap> captured =
      kernel.stop_fault_recording(rec.pid);
  WorkingSetImage ws;
  // image_to_new is ordered by image vma id and for_each_set_run ascends, so
  // the run table comes out sorted without a separate pass.
  for (const auto& [image_id, new_id] : rec.image_to_new) {
    const auto it = captured.find(new_id);
    if (it == captured.end()) continue;
    const os::PageBitmap& bm = it->second;
    bm.for_each_set_run(0, bm.size(),
                        [&](std::uint64_t first, std::uint64_t pages) {
                          ws.runs.push_back({image_id, first, pages});
                          ws.total_pages += pages;
                        });
  }
  return ws;
}

WsLoad load_working_set(const ImageDir& images) {
  WsLoad out;
  if (!images.has(kWsImageName)) {
    out.fallback_kind = RestoreErrorKind::kMissingImage;
    out.detail = std::string{kWsImageName} + ": not present in snapshot";
    return out;
  }
  try {
    out.ws = decode_ws(images.get(kWsImageName).bytes);
  } catch (const RestoreError& e) {
    out.fallback_kind = e.kind();
    out.detail = e.what();
  }
  return out;
}

std::map<os::VmaId, os::PageBitmap> ws_bitmaps(
    const WorkingSetImage& ws, const std::vector<VmaEntry>& vmas) {
  std::map<os::VmaId, std::uint64_t> page_counts;
  for (const VmaEntry& v : vmas)
    page_counts[v.id] = v.length / os::kPageSize;
  std::map<os::VmaId, os::PageBitmap> out;
  for (const WsRun& run : ws.runs) {
    const auto it = page_counts.find(run.vma);
    if (it == page_counts.end())
      throw RestoreError{RestoreErrorKind::kCorruptImage,
                         "ws-1.img: run references unknown vma " +
                             std::to_string(run.vma)};
    if (run.first_page + run.pages > it->second)
      throw RestoreError{RestoreErrorKind::kCorruptImage,
                         "ws-1.img: run past the end of vma " +
                             std::to_string(run.vma)};
    os::PageBitmap& bm = out[run.vma];
    if (bm.size() != it->second) bm.assign(it->second, false);
    bm.set_range(run.first_page, run.pages);
  }
  return out;
}

}  // namespace prebake::criu
