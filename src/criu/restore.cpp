#include "criu/restore.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

namespace prebake::criu {

namespace {

// Charge the storage cost of reading every image file of one snapshot. A
// lazy-pages restore only reads the eager fraction of the page payload; the
// rest is read on demand by the LazyPagesServer. Accumulates read/remote
// byte counts into `result`.
void charge_image_reads(os::Kernel& k, const ImageDir& images,
                        const RestoreOptions& opts, RestoreResult& result) {
  for (const auto& [name, f] : images.files()) {
    std::uint64_t to_read = f.nominal_size;
    if (opts.lazy_pages && name == "pages-1.img")
      to_read = static_cast<std::uint64_t>(
          static_cast<double>(to_read) * std::clamp(opts.lazy_working_set, 0.0, 1.0));
    result.bytes_read += to_read;
    if (to_read == 0) continue;
    if (!opts.fs_prefix.empty()) {
      const std::string path = opts.fs_prefix + name;
      if (opts.remote_fetch && !k.fs().is_cached(path)) {
        // Pull from the remote registry, then keep a local cached copy.
        k.sim().advance(k.costs().network_fetch_cost(to_read) *
                        std::max(opts.io_contention, 1.0));
        k.fs().warm(path);
        result.remote_bytes += to_read;
      }
      if (opts.in_memory) k.fs().warm(path);
      k.fs().charge_read(path, to_read, opts.io_contention);
    } else {
      // Unpersisted images: behave as if already page-cache resident.
      k.sim().advance(k.costs().page_cache_read_cost(to_read) *
                      std::max(opts.io_contention, 1.0));
    }
  }
}

}  // namespace

RestoreResult Restorer::restore(const ImageDir& images,
                                const RestoreOptions& opts) {
  const ImageDir* chain[] = {&images};
  return restore_chain(chain, opts);
}

RestoreResult Restorer::restore_chain(std::span<const ImageDir* const> chain,
                                      const RestoreOptions& opts) {
  if (chain.empty()) throw std::invalid_argument{"restore: empty image chain"};
  os::Kernel& k = *kernel_;
  const sim::TimePoint t0 = k.sim().now();

  const ImageDir& last = *chain.back();
  last.validate();

  // 1. Read and decode the metadata images (and charge their I/O).
  RestoreResult result;
  for (const ImageDir* dir : chain) charge_image_reads(k, *dir, opts, result);

  // The decode cache is shared across restores of the same snapshot; get()
  // still raises the canonical "missing image file" error for absent files.
  const ImageDir::Decoded& dec = last.decoded();
  if (!dec.inventory) last.get("inventory.img");
  const InventoryEntry& inv = *dec.inventory;
  if (!last.has("core-" + std::to_string(inv.root_pid) + ".img"))
    last.get("core-" + std::to_string(inv.root_pid) + ".img");
  const auto& cores = dec.cores;
  if (!last.has("mm.img")) last.get("mm.img");
  const auto& vmas = dec.vmas;
  if (!last.has("files.img")) last.get("files.img");
  const auto& files = dec.files;
  if (cores.size() != inv.n_threads)
    throw std::runtime_error{"restore: core/inventory thread count mismatch"};

  // 2. Transmute: clone the new process shell (optionally with the original
  // pid, which requires CAP_CHECKPOINT_RESTORE [11]).
  os::CloneOptions clone_opts;
  clone_opts.caller_caps = opts.criu_caps;
  if (opts.restore_original_pid) {
    if (!os::has_cap(opts.criu_caps, os::Cap::kCheckpointRestore) &&
        !os::has_cap(opts.criu_caps, os::Cap::kSysAdmin))
      throw std::runtime_error{
          "restore: original pid requires CAP_CHECKPOINT_RESTORE"};
    clone_opts.set_child_pid = true;
    clone_opts.child_pid = inv.root_pid;
  }
  const os::Pid pid = k.clone_process(os::kNoPid, clone_opts);
  os::Process& proc = k.process(pid);
  proc.set_name(inv.name);
  proc.set_argv(inv.argv);
  proc.ns() = inv.ns;
  proc.grant(static_cast<os::Cap>(inv.caps));

  // 3. Threads: the clone gave us a root thread; rename it to the recorded
  // tid (tids are process-local in the model), recreate the remaining
  // threads, and load every register file.
  proc.threads()[0].tid = cores[0].tid;
  for (std::size_t i = 1; i < cores.size(); ++i)
    proc.spawn_thread(cores[i].tid);
  for (std::size_t i = 0; i < cores.size(); ++i)
    proc.threads()[i].regs = cores[i].regs;

  // 4. Rebuild the address space from mm.img. Buffer-backed VMAs need the
  // full page payload; pattern VMAs regenerate from the recorded descriptor.
  if (!dec.pages) last.get("pages-1.img");
  const PagesEntry& last_pages = *dec.pages;
  proc.replace_mm(os::AddressSpace{});
  std::map<os::VmaId, os::VmaId> vma_id_map;  // image id -> new id
  std::map<os::VmaId, std::shared_ptr<os::BufferSource>> buffers;
  for (const VmaEntry& e : vmas) {
    std::shared_ptr<os::PageSource> source;
    if (e.source_kind == SourceKind::kPattern) {
      source = std::make_shared<os::PatternSource>(e.pattern_seed, e.pattern_version);
    } else {
      if (last_pages.mode != PayloadMode::kFull)
        throw std::runtime_error{
            "restore: digest-mode image cannot rebuild buffer-backed memory"};
      auto buf = std::make_shared<os::BufferSource>(
          std::vector<std::uint8_t>(e.length, 0));
      buffers[e.id] = buf;
      source = buf;
    }
    const os::VmaId new_id = proc.mm().map(
        e.length, static_cast<os::Prot>(e.prot), static_cast<os::VmaKind>(e.kind),
        e.name, std::move(source), /*populate=*/false, e.backing_path);
    vma_id_map[e.id] = new_id;
  }

  // 5. Replay the pagemap(s) oldest-first: fault pages in and, for buffer
  // VMAs, copy payload bytes back into place. Under lazy_pages only a
  // prefix of each run is eagerly mapped; the tail goes to the uffd server.
  std::vector<std::pair<os::VmaId, std::uint64_t>> lazy_pending;
  for (const ImageDir* dir : chain) {
    const ImageDir::Decoded& ddec = dir->decoded();
    if (!dir->has("pagemap.img")) dir->get("pagemap.img");
    if (!ddec.pages) dir->get("pages-1.img");
    const auto& maps = ddec.pagemap;
    const PagesEntry& pages = *ddec.pages;
    std::size_t cursor = 0;  // page index within this image's payload
    for (const PagemapEntry& e : maps) {
      const auto it = vma_id_map.find(e.vma);
      if (it == vma_id_map.end())
        throw std::runtime_error{"restore: pagemap references unknown vma"};
      if (e.zero) {
        // Zero run: map fresh zero pages; no payload, no digests.
        k.fault_in(pid, it->second, e.first_page, e.pages, /*write=*/false);
        result.pages_restored += e.pages;
        continue;
      }
      std::uint64_t eager = e.pages;
      if (opts.lazy_pages) {
        eager = static_cast<std::uint64_t>(std::ceil(
            static_cast<double>(e.pages) *
            std::clamp(opts.lazy_working_set, 0.0, 1.0)));
        for (std::uint64_t p = eager; p < e.pages; ++p)
          lazy_pending.emplace_back(it->second, e.first_page + p);
      }
      k.fault_in(pid, it->second, e.first_page, eager, /*write=*/false);
      result.pages_restored += eager;

      const auto buf_it = buffers.find(e.vma);
      for (std::uint64_t p = 0; p < e.pages; ++p, ++cursor) {
        const bool eager_page = p < eager;
        if (buf_it != buffers.end()) {
          if (pages.mode != PayloadMode::kFull)
            throw std::runtime_error{
                "restore: digest-mode image cannot rebuild buffer-backed memory"};
          auto& bytes = buf_it->second->bytes();
          const std::uint64_t off = (e.first_page + p) * os::kPageSize;
          if (off < bytes.size()) {
            const std::size_t len = std::min<std::size_t>(
                os::kPageSize, bytes.size() - off);
            std::memcpy(bytes.data() + off,
                        pages.raw.data() + cursor * os::kPageSize, len);
          }
        }
        if (opts.verify_pages && eager_page) {
          const os::Vma* vma = proc.mm().find(it->second);
          const std::uint64_t got = vma->source->page_digest(e.first_page + p);
          if (cursor >= pages.digests.size() || got != pages.digests[cursor])
            throw std::runtime_error{"restore: page digest mismatch"};
          // Verification reads the page once.
          k.sim().advance(k.costs().memcpy_cost(os::kPageSize));
        }
      }
    }
  }

  // 6. Reopen file descriptors.
  for (const FileEntry& e : files) {
    os::FdDesc desc;
    desc.fd = e.fd;
    desc.kind = static_cast<os::FdKind>(e.kind);
    desc.path = e.path;
    desc.pipe_id = e.pipe_id;
    proc.fds()[e.fd] = desc;
  }

  proc.set_state(os::ProcState::kRunning);
  result.pid = pid;
  if (opts.lazy_pages)
    result.lazy_server = std::make_shared<LazyPagesServer>(
        k, pid, opts.fs_prefix, std::move(lazy_pending));
  result.duration = k.sim().now() - t0;
  return result;
}

LazyPagesServer::LazyPagesServer(
    os::Kernel& kernel, os::Pid pid, std::string fs_prefix,
    std::vector<std::pair<os::VmaId, std::uint64_t>> pending)
    : kernel_{&kernel},
      pid_{pid},
      fs_prefix_{std::move(fs_prefix)},
      pending_{std::move(pending)} {}

std::uint64_t LazyPagesServer::page_in(std::uint64_t pages) {
  if (kernel_ == nullptr) return 0;
  os::Kernel& k = *kernel_;
  std::uint64_t served = 0;
  while (served < pages && cursor_ < pending_.size()) {
    const auto [vma, page] = pending_[cursor_++];
    // uffd round trip + reading the page from the (cached) image.
    k.sim().advance(k.costs().uffd_fault);
    if (!fs_prefix_.empty())
      k.fs().charge_read(fs_prefix_ + "pages-1.img", os::kPageSize);
    else
      k.sim().advance(k.costs().page_cache_read_cost(os::kPageSize));
    if (k.alive(pid_)) k.fault_in(pid_, vma, page, 1, /*write=*/false);
    ++served;
  }
  return served;
}

}  // namespace prebake::criu
