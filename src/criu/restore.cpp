#include "criu/restore.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "criu/page_store.hpp"

namespace prebake::criu {

namespace {

// Pull one image file from the remote registry. A transfer may disconnect
// mid-flight (kRegistryDisconnect): the failed attempt still costs a round
// trip, then the fetcher backs off (linear * jitter) and retries, up to
// opts.fetch_max_attempts. A stalled registry (kRegistryStall) adds the
// plan's stall latency to a successful transfer. With no faults injected
// this reduces to the original single fetch.
void fetch_from_registry(os::Kernel& k, const std::string& path,
                         std::uint64_t bytes, const RestoreOptions& opts,
                         RestoreResult& result) {
  faults::Injector& inj = k.faults();
  obs::Span span = k.trace().span("registry-fetch", "criu.net");
  span.attr("path", path);
  span.attr("bytes", bytes);
  const int max_attempts = std::max(opts.fetch_max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    if (inj.enabled() && inj.fires(faults::FaultSite::kRegistryDisconnect)) {
      k.trace().count("criu.fetch_retries");
      k.sim().advance(k.costs().network_rtt);
      if (attempt >= max_attempts) {
        span.attr("attempts", attempt);
        span.attr("error", "disconnect");
        throw RestoreError{RestoreErrorKind::kFetchFailed,
                           "restore: registry fetch failed after " +
                               std::to_string(attempt) + " attempts: " + path};
      }
      k.sim().advance(opts.fetch_retry_backoff *
                      (static_cast<double>(attempt) * (1.0 + inj.jitter())));
      continue;
    }
    if (inj.enabled() && inj.fires(faults::FaultSite::kRegistryStall))
      k.sim().advance(inj.plan().registry_stall);
    k.sim().advance(k.costs().network_fetch_cost(bytes) *
                    std::max(opts.io_contention, 1.0));
    k.fs().warm(path);
    result.remote_bytes += bytes;
    k.trace().count("criu.remote_bytes", bytes);
    span.attr("attempts", attempt);
    return;
  }
}

// Delta-aware payload negotiation (DESIGN.md §6f): instead of shipping the
// whole page payload, the registry first sends the image's per-page digest
// list (one extra round trip plus 8 bytes per page) and the node answers
// with the digests its content-addressed store is missing; only those pages
// then cross the wire. Duplicate pages within the image transfer once.
// Returns the payload bytes that still have to be fetched.
std::uint64_t negotiate_delta(os::Kernel& k,
                              std::span<const std::uint64_t> digests,
                              const RestoreOptions& opts,
                              RestoreResult& result) {
  PageStore& store = *opts.page_store;
  obs::Span span = k.trace().span("delta-negotiate", "criu.net");
  const std::uint64_t total = digests.size();
  const std::uint64_t digest_bytes = total * sizeof(std::uint64_t);
  k.sim().advance(k.costs().network_rtt);
  k.sim().advance(k.costs().network_fetch_cost(digest_bytes) *
                  std::max(opts.io_contention, 1.0));
  result.remote_bytes += digest_bytes;
  k.trace().count("criu.remote_bytes", digest_bytes);
  const std::uint64_t missing = store.missing_unique_pages(digests);
  const std::uint64_t hit = total - missing;
  const std::uint64_t delta = missing * os::kPageSize;
  result.store_hit_pages += hit;
  result.store_delta_bytes += delta;
  PageStoreStats& st = store.stats_mut();
  st.hit_pages += hit;
  st.miss_pages += missing;
  st.delta_bytes += delta;
  st.digest_bytes += digest_bytes;
  k.trace().count("store.hit_pages", hit);
  k.trace().count("store.delta_bytes", delta);
  span.attr("pages", total);
  span.attr("missing", missing);
  return delta;
}

// How much of one link's page payload the up-front read pass covers, and
// which digests a delta negotiation runs over. Eager restores read
// everything (bytes unset); lazy restores a fraction; working-set prefetch
// reads exactly the link's WS pages and negotiates only their digests, so
// first-restore-on-node ships the WS delta and nothing else up front.
struct Pages1Plan {
  std::optional<std::uint64_t> bytes;  // nullopt = the full nominal size
  // Delta-negotiation scope when a page store is attached; empty = the
  // image's full digest list.
  std::span<const std::uint64_t> digests;
  // Lazy paging keeps its legacy behavior of bypassing the store entirely
  // (the uffd server owns the page lifecycle there).
  bool allow_delta = true;
};

// Charge the storage cost of reading every image file of one snapshot. The
// page payload is covered per `plan` (see Pages1Plan); whatever is not read
// up front is read on demand by the LazyPagesServer. The working-set image
// is skipped here unconditionally — it is advisory, read explicitly by the
// prefetch prep path with fallback-not-fail semantics. Accumulates
// read/remote byte counts into `result`. Throws typed RestoreErrors for
// truncated on-disk copies, transient device errors and injected record
// corruption. `chain_depth` names the pre-dump chain link being read (0 =
// final dump, growing toward the oldest parent; -1 = not part of a chain)
// so truncation in a *parent* link is attributable at the error level.
void charge_image_reads(os::Kernel& k, const ImageDir& images,
                        const RestoreOptions& opts, const Pages1Plan& plan,
                        RestoreResult& result, int chain_depth = -1) {
  faults::Injector& inj = k.faults();
  obs::Tracer& tr = k.trace();
  for (const auto& [name, f] : images.files()) {
    if (name == kWsImageName) continue;
    std::uint64_t to_read = f.nominal_size;
    if (plan.bytes && name == "pages-1.img")
      to_read = std::min(*plan.bytes, f.nominal_size);
    result.bytes_read += to_read;
    if (to_read == 0) continue;
    // Per-image read span ("read:pages-1.img" ...). The name is built only
    // when tracing is on so the disabled path stays allocation-free.
    obs::Span read_span;
    if (tr.enabled()) {
      read_span = tr.span("read:" + name, "criu.io");
      read_span.attr("bytes", to_read);
      tr.count("criu.bytes_read", to_read);
    }
    if (!opts.fs_prefix.empty()) {
      const std::string path = opts.fs_prefix + name;
      // A persisted copy shorter than the record's nominal size is the scar
      // of a truncated write: unrecoverable from this replica, heals via
      // quarantine + re-bake.
      if (k.fs().exists(path) && k.fs().size_of(path) < f.nominal_size) {
        std::string what = "restore: truncated image file " + path + " (" +
                           std::to_string(k.fs().size_of(path)) + " < " +
                           std::to_string(f.nominal_size) + " bytes)";
        if (chain_depth > 0)
          what += " in chain link " + std::to_string(chain_depth);
        throw RestoreError{RestoreErrorKind::kTruncatedImage, what,
                           chain_depth};
      }
      if (opts.remote_fetch && !k.fs().is_cached(path)) {
        if (opts.page_store != nullptr && plan.allow_delta &&
            name == "pages-1.img" && images.decoded().pages) {
          // Borrowed digest span straight out of the decode cache — the
          // negotiation never copies the digest list. A WS-prefetch plan
          // narrows it to the link's working-set pages.
          const std::span<const std::uint64_t> digests =
              plan.digests.empty() ? images.decoded().pages->digests()
                                   : plan.digests;
          const std::uint64_t delta = negotiate_delta(k, digests, opts, result);
          if (delta > 0)
            fetch_from_registry(k, path, delta, opts, result);
          else
            k.fs().warm(path);  // every page already on the node
          opts.page_store->insert(digests);
        } else {
          fetch_from_registry(k, path, to_read, opts, result);
        }
      }
      if (opts.in_memory) k.fs().warm(path);
      try {
        k.fs().charge_read(path, to_read, opts.io_contention);
      } catch (const os::IoError& e) {
        throw RestoreError{RestoreErrorKind::kIoError, e.what()};
      }
    } else {
      // Unpersisted images: behave as if already page-cache resident.
      k.sim().advance(k.costs().page_cache_read_cost(to_read) *
                      std::max(opts.io_contention, 1.0));
    }
    // A bit-flip in the record that the per-record CRC catches after the
    // read. The in-memory ImageDir bytes stay pristine — this models
    // corruption of the transferred/cached copy, so a retry can succeed.
    if (inj.enabled() && inj.fires(faults::FaultSite::kImageCorruption)) {
      read_span.attr("error", "crc-mismatch");
      throw RestoreError{RestoreErrorKind::kCorruptImage,
                         "restore: CRC mismatch reading " + name +
                             " (injected bit-flip)"};
    }
  }
}

// COW-clone a frozen template process into a fresh replica: the clone shares
// every resident page with the template (first writes are charged a page
// copy by the kernel) and takes over the checkpointed identity.
os::Pid spawn_template_clone(os::Kernel& k, os::Pid tpl,
                             const InventoryEntry& inv,
                             const RestoreOptions& opts) {
  os::CloneOptions copts;
  copts.caller_caps = opts.criu_caps;
  copts.cow_tracked = true;
  const os::Pid pid = k.clone_process(tpl, copts);
  os::Process& proc = k.process(pid);
  const os::Process& t = k.process(tpl);
  proc.set_name(inv.name);
  proc.set_argv(inv.argv);
  proc.grant(static_cast<os::Cap>(inv.caps));
  proc.threads()[0].tid = t.threads()[0].tid;
  for (std::size_t i = 1; i < t.threads().size(); ++i)
    proc.spawn_thread(t.threads()[i].tid);
  for (std::size_t i = 0; i < t.threads().size(); ++i) {
    proc.threads()[i].regs = t.threads()[i].regs;
    proc.threads()[i].state = os::ThreadState::kRunning;
  }
  return pid;
}

}  // namespace

RestoreResult Restorer::restore(const ImageDir& images,
                                const RestoreOptions& opts) {
  const ImageDir* chain[] = {&images};
  return restore_chain(chain, opts);
}

RestoreResult Restorer::restore_chain(std::span<const ImageDir* const> chain,
                                      const RestoreOptions& opts) {
  if (chain.empty()) throw std::invalid_argument{"restore: empty image chain"};
  opts.validate();
  const PagingPolicy paging = opts.effective_paging();
  const bool lazy = paging.mode == PagingMode::kLazy;
  const bool ws_record =
      paging.mode == PagingMode::kWorkingSet && paging.ws_record;
  const bool ws_prefetch =
      paging.mode == PagingMode::kWorkingSet && !paging.ws_record;
  // Fast path (DESIGN.md §6f): the node store already holds a frozen template
  // for this snapshot — COW-clone it instead of replaying the images.
  // (validate() already guaranteed store_key implies eager paging.)
  if (opts.page_store != nullptr && !opts.store_key.empty() &&
      opts.page_store->has_template(opts.store_key))
    return clone_from_template(chain, opts);
  os::Kernel& k = *kernel_;
  obs::Tracer& tr = k.trace();
  const sim::TimePoint t0 = k.sim().now();

  obs::Span restore_span = tr.span("criu.restore", "criu");
  restore_span.attr("chain", static_cast<std::uint64_t>(chain.size()));

  // Every link of the chain is read, so every link's records get their CRCs
  // re-checked on the way in — a corrupt parent pre-dump fails the restore
  // just like a corrupt final dump. Host-side check: no simulated time.
  {
    obs::Span s = tr.span("validate", "criu");
    for (std::size_t i = 0; i < chain.size(); ++i) {
      // Depth counts from the newest link: the final dump is link 0, its
      // parent pre-dump link 1, and so on toward the oldest pre-dump.
      const int depth = static_cast<int>(chain.size() - 1 - i);
      try {
        chain[i]->validate();
      } catch (const std::runtime_error& e) {
        throw RestoreError{RestoreErrorKind::kCorruptImage,
                           std::string{e.what()} + " (chain link " +
                               std::to_string(depth) + ")",
                           depth};
      }
    }
  }
  const ImageDir& last = *chain.back();
  RestoreResult result;

  // 0. Working-set prefetch prep (DESIGN.md §6j): read and decode ws-1.img,
  // then expand it into per-vma bitmaps. Any failure here — missing file,
  // truncated or corrupt image, a bad read of the persisted copy —
  // downgrades the restore to pure-lazy with a typed warning in the result:
  // the WS image is advisory and must never fail a restore that would
  // otherwise complete.
  std::map<os::VmaId, os::PageBitmap> ws_pages;  // image vma id -> WS bitmap
  bool have_ws = false;
  if (ws_prefetch) {
    obs::Span s = tr.span("ws-prep", "criu");
    if (!last.has(kWsImageName)) {
      result.ws_fallback = true;
      result.ws_fallback_kind = RestoreErrorKind::kMissingImage;
      result.ws_fallback_detail =
          std::string{kWsImageName} + ": not present in snapshot";
    } else {
      try {
        // Read the WS image like any other metadata file (fetched from the
        // registry on remote first-restore, charged at storage bandwidth).
        const std::uint64_t ws_bytes = last.get(kWsImageName).bytes.size();
        result.bytes_read += ws_bytes;
        if (!opts.fs_prefix.empty()) {
          const std::string path = opts.fs_prefix + kWsImageName;
          if (opts.remote_fetch && !k.fs().is_cached(path))
            fetch_from_registry(k, path, ws_bytes, opts, result);
          if (opts.in_memory) k.fs().warm(path);
          if (k.fs().exists(path)) {
            try {
              k.fs().charge_read(path, ws_bytes, opts.io_contention);
            } catch (const os::IoError& e) {
              throw RestoreError{RestoreErrorKind::kIoError, e.what()};
            }
          } else {
            k.sim().advance(k.costs().page_cache_read_cost(ws_bytes) *
                            std::max(opts.io_contention, 1.0));
          }
        } else {
          k.sim().advance(k.costs().page_cache_read_cost(ws_bytes) *
                          std::max(opts.io_contention, 1.0));
        }
        const WsLoad load = load_working_set(last);
        if (!load.ws)
          throw RestoreError{load.fallback_kind, load.detail};
        ws_pages = ws_bitmaps(*load.ws, last.decoded().vmas);
        have_ws = true;
      } catch (const RestoreError& e) {
        result.ws_fallback = true;
        result.ws_fallback_kind = e.kind();
        result.ws_fallback_detail = e.what();
        ws_pages.clear();
      }
    }
    if (result.ws_fallback) {
      s.attr("fallback", restore_error_name(result.ws_fallback_kind));
      tr.count("criu.ws_fallback");
    }
  }

  // Per-link plans for the page payload: how many bytes the up-front read
  // pass covers and which digests a page-store delta negotiation runs over.
  std::vector<Pages1Plan> plans(chain.size());
  // Owned digest storage backing plans[i].digests for WS prefetch (the
  // working set's digests, gathered per link in pagemap order).
  std::vector<std::vector<std::uint64_t>> ws_digests(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (lazy) {
      std::uint64_t nominal = 0;
      if (chain[i]->has("pages-1.img"))
        nominal = chain[i]->get("pages-1.img").nominal_size;
      plans[i].bytes = static_cast<std::uint64_t>(
          static_cast<double>(nominal) *
          std::clamp(paging.lazy_fraction, 0.0, 1.0));
      plans[i].allow_delta = false;
    } else if (ws_record || (ws_prefetch && !have_ws)) {
      // Record mode (and the damaged-WS fallback) restores pure-lazy: every
      // payload page is first read when it is first touched.
      plans[i].bytes = 0;
      plans[i].allow_delta = false;
    } else if (ws_prefetch) {
      const ImageDir::Decoded& ddec = chain[i]->decoded();
      std::uint64_t ws_count = 0;
      const bool want_digests =
          opts.page_store != nullptr && ddec.pages.has_value();
      const std::span<const std::uint64_t> digests =
          want_digests ? ddec.pages->digests()
                       : std::span<const std::uint64_t>{};
      std::uint64_t cursor = 0;
      for (const PagemapEntry& e : ddec.pagemap) {
        if (e.zero) continue;
        const auto bit = ws_pages.find(e.vma);
        if (bit != ws_pages.end()) {
          ws_count += bit->second.count_range(e.first_page, e.pages);
          if (want_digests)
            bit->second.for_each_set_run(
                e.first_page, e.pages,
                [&](std::uint64_t first, std::uint64_t n) {
                  const std::uint64_t base = cursor + (first - e.first_page);
                  for (std::uint64_t j = 0; j < n && base + j < digests.size();
                       ++j)
                    ws_digests[i].push_back(digests[base + j]);
                });
        }
        cursor += e.pages;
      }
      plans[i].bytes = ws_count * os::kPageSize;
      plans[i].digests = ws_digests[i];
    }
  }

  // 1. Read and decode the metadata images (and charge their I/O).
  {
    obs::Span s = tr.span("image-reads", "criu.io");
    // Pre-dump links live under nested parent/ subdirectories of the final
    // image dir (CRIU's --prev-images-dir layout): every link names its
    // payload pages-1.img, so a flat prefix would alias their files.
    for (std::size_t i = 0; i < chain.size(); ++i) {
      RestoreOptions link = opts;
      if (!link.fs_prefix.empty())
        for (std::size_t j = i + 1; j < chain.size(); ++j)
          link.fs_prefix += "parent/";
      const int depth =
          chain.size() > 1 ? static_cast<int>(chain.size() - 1 - i) : -1;
      charge_image_reads(k, *chain[i], link, plans[i], result, depth);
    }
  }

  // The decode cache is shared across restores of the same snapshot.
  const ImageDir::Decoded& dec = last.decoded();
  if (!dec.inventory)
    throw RestoreError{RestoreErrorKind::kMissingImage,
                       "restore: missing image file inventory.img"};
  const InventoryEntry& inv = *dec.inventory;
  if (!last.has("core-" + std::to_string(inv.root_pid) + ".img"))
    throw RestoreError{RestoreErrorKind::kMissingImage,
                       "restore: missing image file core-" +
                           std::to_string(inv.root_pid) + ".img"};
  const auto& cores = dec.cores;
  if (!last.has("mm.img"))
    throw RestoreError{RestoreErrorKind::kMissingImage,
                       "restore: missing image file mm.img"};
  const auto& vmas = dec.vmas;
  if (!last.has("files.img"))
    throw RestoreError{RestoreErrorKind::kMissingImage,
                       "restore: missing image file files.img"};
  const auto& files = dec.files;
  if (cores.size() != inv.n_threads)
    throw RestoreError{RestoreErrorKind::kUnsupported,
                       "restore: core/inventory thread count mismatch"};

  // 2. Transmute: clone the new process shell (optionally with the original
  // pid, which requires CAP_CHECKPOINT_RESTORE [11]).
  obs::Span transmute_span = tr.span("transmute", "criu");
  os::CloneOptions clone_opts;
  clone_opts.caller_caps = opts.criu_caps;
  if (opts.restore_original_pid) {
    if (!os::has_cap(opts.criu_caps, os::Cap::kCheckpointRestore) &&
        !os::has_cap(opts.criu_caps, os::Cap::kSysAdmin))
      throw RestoreError{RestoreErrorKind::kPermission,
                         "restore: original pid requires CAP_CHECKPOINT_RESTORE"};
    clone_opts.set_child_pid = true;
    clone_opts.child_pid = inv.root_pid;
  }
  const os::Pid pid = k.clone_process(os::kNoPid, clone_opts);
  // If anything below throws, tear the half-restored shell down so a failed
  // restore doesn't leak a process into the kernel table; the retry/fallback
  // paths start from a clean slate.
  struct Cleanup {
    os::Kernel* k;
    os::Pid pid;
    bool armed = true;
    ~Cleanup() {
      if (!armed) return;
      k->kill_process(pid);
      k->reap(pid);
    }
  } cleanup{&k, pid};
  os::Process& proc = k.process(pid);
  proc.set_name(inv.name);
  proc.set_argv(inv.argv);
  proc.ns() = inv.ns;
  proc.grant(static_cast<os::Cap>(inv.caps));

  // 3. Threads: the clone gave us a root thread; rename it to the recorded
  // tid (tids are process-local in the model), recreate the remaining
  // threads, and load every register file.
  proc.threads()[0].tid = cores[0].tid;
  for (std::size_t i = 1; i < cores.size(); ++i)
    proc.spawn_thread(cores[i].tid);
  for (std::size_t i = 0; i < cores.size(); ++i)
    proc.threads()[i].regs = cores[i].regs;
  transmute_span.attr("threads", static_cast<std::uint64_t>(cores.size()));
  transmute_span.end();

  // 4. Rebuild the address space from mm.img. Buffer-backed VMAs need the
  // full page payload; pattern VMAs regenerate from the recorded descriptor.
  if (!dec.pages)
    throw RestoreError{RestoreErrorKind::kMissingImage,
                       "restore: missing image file pages-1.img"};
  const ImageDir::PagesView& last_pages = *dec.pages;
  obs::Span vma_span = tr.span("vma-rebuild", "criu");
  proc.replace_mm(os::AddressSpace{});
  std::map<os::VmaId, os::VmaId> vma_id_map;  // image id -> new id
  std::map<os::VmaId, std::shared_ptr<os::BufferSource>> buffers;
  for (const VmaEntry& e : vmas) {
    std::shared_ptr<os::PageSource> source;
    if (e.source_kind == SourceKind::kPattern) {
      source = std::make_shared<os::PatternSource>(e.pattern_seed, e.pattern_version);
    } else {
      if (last_pages.mode() != PayloadMode::kFull)
        throw RestoreError{
            RestoreErrorKind::kUnsupported,
            "restore: digest-mode image cannot rebuild buffer-backed memory"};
      auto buf = std::make_shared<os::BufferSource>(
          std::vector<std::uint8_t>(e.length, 0));
      buffers[e.id] = buf;
      source = buf;
    }
    const os::VmaId new_id = proc.mm().map(
        e.length, static_cast<os::Prot>(e.prot), static_cast<os::VmaKind>(e.kind),
        e.name, std::move(source), /*populate=*/false, e.backing_path);
    vma_id_map[e.id] = new_id;
  }
  vma_span.attr("vmas", static_cast<std::uint64_t>(vmas.size()));
  vma_span.end();

  obs::Span pagemap_span = tr.span("pagemap-replay", "criu");
  // 5. Replay the pagemap(s) oldest-first, one *run* at a time (DESIGN.md
  // §6g): each pagemap entry becomes a single bulk populate (one memcpy of
  // the run's payload span, one aggregated fault charge) and, when
  // verifying, a single bulk digest compare. Under lazy paging only a prefix
  // of each run is eagerly mapped; under WS prefetch the recorded working
  // set's sub-runs are; in both cases the cold remainder goes to the uffd
  // server as run-length-encoded entries.
  std::vector<LazyRun> lazy_pending;
  std::uint64_t lazy_pending_pages = 0;
  for (const ImageDir* dir : chain) {
    const ImageDir::Decoded& ddec = dir->decoded();
    if (!dir->has("pagemap.img"))
      throw RestoreError{RestoreErrorKind::kMissingImage,
                         "restore: missing image file pagemap.img"};
    if (!ddec.pages)
      throw RestoreError{RestoreErrorKind::kMissingImage,
                         "restore: missing image file pages-1.img"};
    const auto& maps = ddec.pagemap;
    const ImageDir::PagesView& pages = *ddec.pages;
    // Borrow the payload spans once per image; every run below slices them.
    const std::span<const std::uint64_t> digests =
        opts.verify_pages ? pages.digests() : std::span<const std::uint64_t>{};
    const std::span<const std::uint8_t> raw =
        pages.mode() == PayloadMode::kFull ? pages.raw()
                                           : std::span<const std::uint8_t>{};
    std::uint64_t cursor = 0;  // page index within this image's payload
    for (const PagemapEntry& e : maps) {
      const auto it = vma_id_map.find(e.vma);
      if (it == vma_id_map.end())
        throw RestoreError{RestoreErrorKind::kCorruptImage,
                           "restore: pagemap references unknown vma"};
      if (e.zero) {
        // Zero run: map fresh zero pages; no payload, no digests.
        k.fault_in(pid, it->second, e.first_page, e.pages, /*write=*/false);
        result.pages_restored += e.pages;
        continue;
      }
      std::uint64_t eager = e.pages;
      if (lazy) {
        eager = static_cast<std::uint64_t>(std::ceil(
            static_cast<double>(e.pages) *
            std::clamp(paging.lazy_fraction, 0.0, 1.0)));
        if (eager < e.pages) {
          lazy_pending.push_back(
              LazyRun{it->second, e.first_page + eager, e.pages - eager});
          lazy_pending_pages += e.pages - eager;
        }
      } else if (ws_record || (ws_prefetch && !have_ws)) {
        // Pure-lazy: defer the whole run. In record mode the kernel's fault
        // capture (armed below) then sees exactly the first invocation's
        // touches.
        eager = 0;
        lazy_pending.push_back(LazyRun{it->second, e.first_page, e.pages});
        lazy_pending_pages += e.pages;
      } else if (ws_prefetch) {
        // The recorded WS sub-runs are faulted explicitly after the payload
        // copy; the gaps between them go to the uffd server.
        eager = 0;
      }
      std::span<const std::uint8_t> payload{};
      if (buffers.contains(e.vma)) {
        if (pages.mode() != PayloadMode::kFull)
          throw std::runtime_error{
              "restore: digest-mode image cannot rebuild buffer-backed memory"};
        // The whole run's payload (clamped against a short raw section):
        // populate_run copies it even past the eager prefix, exactly like
        // the per-page copy loop it replaces.
        const std::uint64_t off = cursor * os::kPageSize;
        if (off < raw.size())
          payload = raw.subspan(off, std::min<std::uint64_t>(
                                         e.pages * os::kPageSize,
                                         raw.size() - off));
      }
      k.populate_run(pid, it->second, e.first_page, eager, payload);
      result.pages_restored += eager;

      if (ws_prefetch && have_ws) {
        // Bulk-map the recorded working set's sub-runs of this pagemap run;
        // run-length-encode the cold gaps for the uffd server.
        const auto bit = ws_pages.find(e.vma);
        std::uint64_t pos = e.first_page;
        const std::uint64_t end = e.first_page + e.pages;
        if (bit != ws_pages.end())
          bit->second.for_each_set_run(
              e.first_page, e.pages,
              [&](std::uint64_t first, std::uint64_t n) {
                if (first > pos) {
                  lazy_pending.push_back(LazyRun{it->second, pos, first - pos});
                  lazy_pending_pages += first - pos;
                }
                k.fault_in(pid, it->second, first, n, /*write=*/false);
                result.pages_restored += n;
                result.ws_prefetched_pages += n;
                if (opts.verify_pages) {
                  const std::uint64_t base = cursor + (first - e.first_page);
                  const std::uint64_t avail =
                      base < digests.size() ? digests.size() - base : 0;
                  const std::uint64_t matched =
                      k.verify_run(pid, it->second, first,
                                   digests.subspan(base, std::min(n, avail)));
                  if (matched < n) {
                    pagemap_span.attr("error", "digest-mismatch");
                    throw RestoreError{RestoreErrorKind::kCorruptImage,
                                       "restore: page digest mismatch"};
                  }
                }
                pos = first + n;
              });
        if (pos < end) {
          lazy_pending.push_back(LazyRun{it->second, pos, end - pos});
          lazy_pending_pages += end - pos;
        }
      }

      if (opts.verify_pages && eager > 0) {
        const std::uint64_t avail =
            cursor < digests.size() ? digests.size() - cursor : 0;
        const std::uint64_t matched = k.verify_run(
            pid, it->second, e.first_page,
            digests.subspan(cursor, std::min(eager, avail)));
        if (matched < eager) {
          pagemap_span.attr("error", "digest-mismatch");
          throw RestoreError{RestoreErrorKind::kCorruptImage,
                             "restore: page digest mismatch"};
        }
      }
      cursor += e.pages;
    }
  }

  pagemap_span.attr("pages_restored", result.pages_restored);
  if (paging.mode != PagingMode::kEager)
    pagemap_span.attr("lazy_pending", lazy_pending_pages);
  if (ws_prefetch)
    pagemap_span.attr("ws_prefetched", result.ws_prefetched_pages);
  if (opts.verify_pages) pagemap_span.attr("verified", "true");
  pagemap_span.end();

  // 6. Reopen file descriptors.
  {
    obs::Span s = tr.span("fds", "criu");
    for (const FileEntry& e : files) {
      os::FdDesc desc;
      desc.fd = e.fd;
      desc.kind = static_cast<os::FdKind>(e.kind);
      desc.path = e.path;
      desc.pipe_id = e.pipe_id;
      proc.fds()[e.fd] = desc;
    }
  }

  proc.set_state(os::ProcState::kRunning);
  cleanup.armed = false;
  result.pid = pid;
  if (opts.page_store != nullptr && paging.mode == PagingMode::kEager) {
    PageStore& store = *opts.page_store;
    // Whatever the payload source was, the node now holds these pages.
    for (const ImageDir* dir : chain)
      if (dir->decoded().pages) store.insert(dir->decoded().pages->digests());
    if (!opts.store_key.empty() && !store.has_template(opts.store_key)) {
      // First restore of this snapshot on the node: freeze the restored
      // process into an immutable template and hand back a COW clone
      // ("restore once, clone many"). Later replicas of the same snapshot
      // skip the image reads entirely via clone_from_template.
      obs::Span tspan = tr.span("template-materialize", "criu");
      tspan.attr("key", opts.store_key);
      k.freeze(pid, opts.criu_caps);
      proc.set_name(inv.name + " [template]");
      PageStore::TemplateInfo info;
      info.pid = pid;
      info.vma_map = vma_id_map;
      for (const ImageDir* dir : chain) {
        const ImageDir::Decoded& ddec = dir->decoded();
        if (ddec.pages) {
          const std::span<const std::uint64_t> d = ddec.pages->digests();
          info.digests.insert(info.digests.end(), d.begin(), d.end());
        }
      }
      store.register_template(opts.store_key, std::move(info));
      result.template_materialized = true;
      result.pid = spawn_template_clone(k, pid, inv, opts);
    }
  } else if (opts.page_store != nullptr && ws_prefetch && have_ws) {
    // The node now holds the working-set pages (they were read up front);
    // the cold tail only lands page by page via the uffd server and is not
    // tracked. Re-inserting digests the delta path already registered is a
    // no-op — the store is content addressed.
    for (const std::vector<std::uint64_t>& d : ws_digests)
      if (!d.empty()) opts.page_store->insert(d);
  }
  if (paging.mode != PagingMode::kEager)
    result.lazy_server = std::make_shared<LazyPagesServer>(
        k, pid, opts.fs_prefix, std::move(lazy_pending));
  if (ws_record) {
    // Arm the kernel's fault capture only now, after the replay: everything
    // recorded from here on — lazy page-ins, the invocation's own touches —
    // is the first invocation's working set. Host-side bookkeeping, no
    // simulated time.
    auto rec = std::make_shared<WsRecorder>();
    rec->pid = pid;
    rec->image_to_new = vma_id_map;
    k.start_fault_recording(pid);
    result.ws_recorder = std::move(rec);
  }
  result.duration = k.sim().now() - t0;
  restore_span.attr("pages", result.pages_restored);
  restore_span.attr("bytes_read", result.bytes_read);
  tr.measure("criu.restore_ms", result.duration.to_millis());
  return result;
}

RestoreResult Restorer::clone_from_template(
    std::span<const ImageDir* const> chain, const RestoreOptions& opts) {
  os::Kernel& k = *kernel_;
  obs::Tracer& tr = k.trace();
  const sim::TimePoint t0 = k.sim().now();
  PageStore& store = *opts.page_store;
  const PageStore::TemplateInfo& tpl = *store.find_template(opts.store_key);

  obs::Span span = tr.span("template-clone", "criu");
  span.attr("key", opts.store_key);

  const ImageDir::Decoded& dec = chain.back()->decoded();
  if (!dec.inventory)
    throw RestoreError{RestoreErrorKind::kMissingImage,
                       "restore: missing image file inventory.img"};
  const InventoryEntry& inv = *dec.inventory;

  RestoreResult result;
  result.pid = spawn_template_clone(k, tpl.pid, inv, opts);
  result.template_clone = true;
  os::Process& proc = k.process(result.pid);
  result.pages_restored = proc.mm().resident_pages();

  if (opts.verify_pages) {
    // Integrity check on the clone: recompute each payload run's digests and
    // compare against the image chain, exactly as the slow path would. COW
    // sharing is read-transparent, so a clone that already broke some pages
    // still verifies as long as nothing rewrote the checkpointed contents.
    // One bulk compare + one aggregated cost advance per run (§6g).
    for (const ImageDir* dir : chain) {
      const ImageDir::Decoded& ddec = dir->decoded();
      if (!ddec.pages) continue;
      const std::span<const std::uint64_t> digests = ddec.pages->digests();
      std::uint64_t cursor = 0;
      for (const PagemapEntry& e : ddec.pagemap) {
        if (e.zero) continue;
        const auto it = tpl.vma_map.find(e.vma);
        if (it == tpl.vma_map.end())
          throw RestoreError{RestoreErrorKind::kCorruptImage,
                             "restore: pagemap references unknown vma"};
        const std::uint64_t avail =
            cursor < digests.size() ? digests.size() - cursor : 0;
        const std::uint64_t matched = k.verify_run(
            result.pid, it->second, e.first_page,
            digests.subspan(cursor, std::min(e.pages, avail)));
        if (matched < e.pages) {
          span.attr("error", "digest-mismatch");
          throw RestoreError{RestoreErrorKind::kCorruptImage,
                             "restore: page digest mismatch"};
        }
        cursor += e.pages;
      }
    }
    span.attr("verified", "true");
  }

  ++store.stats_mut().template_clones;
  tr.count("template.clone");
  result.duration = k.sim().now() - t0;
  span.attr("pages", result.pages_restored);
  tr.measure("criu.template_clone_ms", result.duration.to_millis());
  return result;
}

LazyPagesServer::LazyPagesServer(os::Kernel& kernel, os::Pid pid,
                                 std::string fs_prefix,
                                 std::vector<LazyRun> pending)
    : kernel_{&kernel},
      pid_{pid},
      fs_prefix_{std::move(fs_prefix)},
      pending_{std::move(pending)} {
  for (const LazyRun& run : pending_) remaining_ += run.pages;
}

std::uint64_t LazyPagesServer::page_in(std::uint64_t pages) {
  if (kernel_ == nullptr) return 0;
  os::Kernel& k = *kernel_;
  faults::Injector& inj = k.faults();
  obs::Span span = k.trace().span("lazy.page-in", "criu");
  span.attr("requested", pages);
  // Transient image-read errors during a page-in are retried this many times
  // before giving up — a persistently failing device means the target would
  // fault forever.
  constexpr int kMaxReadAttempts = 3;
  std::uint64_t served = 0;
  while (served < pages && run_ < pending_.size()) {
    // Pages are served in first-touch order, one uffd round trip each; the
    // run-length encoding only compresses the queue, not the fault costs.
    const os::VmaId vma = pending_[run_].vma;
    const std::uint64_t page = pending_[run_].first_page + run_off_;
    if (++run_off_ >= pending_[run_].pages) {
      ++run_;
      run_off_ = 0;
    }
    --remaining_;
    if (!died_ && inj.enabled() &&
        inj.fires(faults::FaultSite::kLazyServerDeath)) {
      // The uffd daemon died mid-fault. The supervisor respawns it (once per
      // server in this model) and the faulting thread eats the latency.
      died_ = true;
      ++deaths_;
      k.sim().advance(k.costs().clone_call + k.costs().exec_base);
    }
    // uffd round trip + reading the page from the (cached) image.
    k.sim().advance(k.costs().uffd_fault);
    for (int attempt = 1;; ++attempt) {
      try {
        if (!fs_prefix_.empty())
          k.fs().charge_read(fs_prefix_ + "pages-1.img", os::kPageSize);
        else
          k.sim().advance(k.costs().page_cache_read_cost(os::kPageSize));
        break;
      } catch (const os::IoError& e) {
        if (attempt >= kMaxReadAttempts)
          throw RestoreError{RestoreErrorKind::kIoError, e.what()};
      }
    }
    if (k.alive(pid_)) k.fault_in(pid_, vma, page, 1, /*write=*/false);
    ++served;
  }
  span.attr("served", served);
  k.trace().count("criu.lazy_pages_served", served);
  return served;
}

}  // namespace prebake::criu
