// Checkpoint image format.
//
// A snapshot is a directory of image files, mirroring CRIU's on-disk layout:
//
//   inventory.img   — format version, root pid, process name, thread count
//   core-<tid>.img  — per-thread architectural state
//   mm.img          — VMA table (address layout, protections, page sources)
//   pagemap.img     — runs of dumped pages per VMA
//   pages-1.img     — page payload: either raw bytes (kFull) or per-page
//                     64-bit digests plus a regeneration descriptor (kDigest)
//   files.img       — open file descriptors
//   stats.img       — dump statistics (pages, bytes, durations)
//
// Every image file starts with a magic + type header and ends with a CRC-32
// of its body; ImageDir::validate() re-checks all of them. The *nominal*
// size of pages-1.img is always the full payload size (pages × 4 KiB), which
// is what restore I/O is charged on — the digest mode only avoids keeping
// tens of MiB of synthetic bytes resident in the host running the
// simulation. Both modes round-trip byte-identical process state because
// PatternSource contents are a pure function of the recorded descriptor.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "os/process.hpp"

namespace prebake::criu {

inline constexpr std::uint32_t kImageMagic = 0x50424B31;  // "PBK1"
// v4: pages-1.img pads the digest array to an 8-byte file offset so the
// decode cache can hand out a borrowed uint64 span over the stored bytes
// (the zero-copy image path, DESIGN.md §6g).
inline constexpr std::uint32_t kFormatVersion = 4;

enum class ImageType : std::uint32_t {
  kInventory = 1,
  kCore = 2,
  kMm = 3,
  kPagemap = 4,
  kPages = 5,
  kFiles = 6,
  kStats = 7,
  kWs = 8,  // ws-1.img: recorded first-invocation working set (DESIGN.md §6j)
};

enum class PayloadMode : std::uint8_t { kFull = 0, kDigest = 1 };

struct InventoryEntry {
  std::uint32_t version = kFormatVersion;
  os::Pid root_pid = 0;
  std::string name;
  std::vector<std::string> argv;
  std::uint32_t n_threads = 1;
  os::Namespaces ns{};
  std::uint32_t caps = 0;
  bool operator==(const InventoryEntry&) const = default;
};

struct CoreEntry {
  os::Tid tid = 0;
  std::array<std::uint64_t, 8> regs{};
  bool operator==(const CoreEntry&) const = default;
};

enum class SourceKind : std::uint8_t { kBuffer = 0, kPattern = 1 };

struct VmaEntry {
  os::VmaId id = 0;
  std::uint64_t start = 0;
  std::uint64_t length = 0;
  std::uint8_t prot = 0;
  std::uint8_t kind = 0;  // os::VmaKind
  std::string name;
  std::string backing_path;
  SourceKind source_kind = SourceKind::kPattern;
  std::uint64_t pattern_seed = 0;     // for kPattern
  std::uint64_t pattern_version = 0;  // for kPattern
  bool operator==(const VmaEntry&) const = default;
};

struct PagemapEntry {
  os::VmaId vma = 0;
  std::uint64_t first_page = 0;
  std::uint64_t pages = 0;
  // PAGE_IS_ZERO: the run is known to be all-zero pages; no payload is
  // stored and restore maps fresh zero pages (CRIU's zero-page detection).
  bool zero = false;
  bool operator==(const PagemapEntry&) const = default;
};

struct FileEntry {
  int fd = -1;
  std::uint8_t kind = 0;  // os::FdKind
  std::string path;
  std::uint64_t pipe_id = 0;
  bool operator==(const FileEntry&) const = default;
};

struct StatsEntry {
  std::uint64_t pages_dumped = 0;   // pages with payload (zero pages excluded)
  std::uint64_t zero_pages = 0;     // detected all-zero pages (no payload)
  std::uint64_t payload_bytes = 0;   // pages_dumped * 4 KiB
  std::uint64_t metadata_bytes = 0;  // everything except page payload
  std::int64_t dump_duration_ns = 0;
  std::uint32_t warmup_requests = 0;  // prebake policy bookkeeping
  bool operator==(const StatsEntry&) const = default;
};

// Page payload: one digest per dumped page (in pagemap order); raw bytes are
// kept only in kFull mode. This is the *owning* form used by the dump side
// and by round-trip tests; the restore hot path reads the zero-copy
// ImageDir::PagesView instead.
struct PagesEntry {
  PayloadMode mode = PayloadMode::kDigest;
  std::vector<std::uint64_t> digests;
  std::vector<std::uint8_t> raw;  // kFull: pages*4096 bytes
  bool operator==(const PagesEntry&) const = default;
};

// Zero-copy decode of a pages image: the returned spans borrow from `img`
// and are valid only while those bytes stay alive and unchanged.
struct PagesSpans {
  PayloadMode mode = PayloadMode::kDigest;
  std::uint32_t n_pages = 0;
  std::span<const std::uint8_t> digest_bytes;  // n_pages * 8, little-endian
  std::span<const std::uint8_t> raw;           // kFull payload bytes
};
PagesSpans decode_pages_spans(std::span<const std::uint8_t> img);

// --- per-file encode/decode (each returns/accepts a full image file body,
// i.e. header + payload + trailing CRC) ------------------------------------
std::vector<std::uint8_t> encode_inventory(const InventoryEntry& e);
InventoryEntry decode_inventory(std::span<const std::uint8_t> img);
std::vector<std::uint8_t> encode_core(const std::vector<CoreEntry>& cores);
std::vector<CoreEntry> decode_core(std::span<const std::uint8_t> img);
std::vector<std::uint8_t> encode_mm(const std::vector<VmaEntry>& vmas);
std::vector<VmaEntry> decode_mm(std::span<const std::uint8_t> img);
std::vector<std::uint8_t> encode_pagemap(const std::vector<PagemapEntry>& es);
std::vector<PagemapEntry> decode_pagemap(std::span<const std::uint8_t> img);
std::vector<std::uint8_t> encode_pages(const PagesEntry& e);
PagesEntry decode_pages(std::span<const std::uint8_t> img);
std::vector<std::uint8_t> encode_files(const std::vector<FileEntry>& es);
std::vector<FileEntry> decode_files(std::span<const std::uint8_t> img);
std::vector<std::uint8_t> encode_stats(const StatsEntry& e);
StatsEntry decode_stats(std::span<const std::uint8_t> img);

// Recorded first-invocation working set (REAP-style restore, DESIGN.md §6j):
// RLE runs of faulted pages in *image* VMA coordinates, so any later restore
// can translate them through its own vma id map. Persisted as ws-1.img next
// to the snapshot, framed and CRC-guarded like every other image file.
// decode_ws throws *typed* RestoreError (kTruncatedImage / kCorruptImage) so
// the restore path can downgrade a damaged WS image to pure-lazy instead of
// failing the restore.
inline constexpr const char* kWsImageName = "ws-1.img";

struct WsRun {
  os::VmaId vma = 0;          // image vma id (VmaEntry::id)
  std::uint64_t first_page = 0;
  std::uint64_t pages = 0;
  bool operator==(const WsRun&) const = default;
};

struct WorkingSetImage {
  std::uint32_t version = kFormatVersion;
  std::vector<WsRun> runs;
  std::uint64_t total_pages = 0;  // sum of runs[i].pages, cross-checked
  bool operator==(const WorkingSetImage&) const = default;
};

std::vector<std::uint8_t> encode_ws(const WorkingSetImage& ws);
WorkingSetImage decode_ws(std::span<const std::uint8_t> img);

// An in-memory image directory. Real bytes are kept here; nominal sizes are
// what storage accounting uses (they differ only for digest-mode pages).
class ImageDir {
 public:
  struct ImageFile {
    std::vector<std::uint8_t> bytes;
    std::uint64_t nominal_size = 0;
  };

  // Borrowed, zero-copy view of a decoded pages-1.img: the digest and raw
  // spans alias the directory's stored bytes — no per-restore payload copy.
  // put() (any content change) flips the view's liveness token, so touching
  // a stale view is a hard std::logic_error instead of a silent
  // use-after-free; re-call decoded() for a fresh view.
  class PagesView {
   public:
    PagesView() = default;
    PayloadMode mode() const { return mode_; }
    std::uint64_t page_count() const { return n_pages_; }
    std::span<const std::uint64_t> digests() const {
      check();
      return digests_;
    }
    std::span<const std::uint8_t> raw() const {
      check();
      return raw_;
    }

   private:
    friend class ImageDir;
    void check() const {
      if (live_ == nullptr || !live_->load(std::memory_order_acquire))
        throw std::logic_error{
            "ImageDir::PagesView: stale view (directory changed after decode)"};
    }
    PayloadMode mode_ = PayloadMode::kDigest;
    std::uint64_t n_pages_ = 0;
    std::span<const std::uint64_t> digests_;
    std::span<const std::uint8_t> raw_;
    std::shared_ptr<const std::atomic<bool>> live_;
  };

  // Decoded view of the standard image files, built lazily on first access
  // and reused by every restore of this directory. Re-parsing (and
  // CRC-checking) the same unchanged bytes on each of the harness's hundreds
  // of restores per scenario dominated the restore hot path. Absent files
  // leave their field empty; restore still reports them via get().
  struct Decoded {
    std::optional<InventoryEntry> inventory;
    std::vector<CoreEntry> cores;       // core-<root_pid>.img
    std::vector<VmaEntry> vmas;         // mm.img
    std::vector<FileEntry> files;       // files.img
    std::vector<PagemapEntry> pagemap;  // pagemap.img
    std::optional<PagesView> pages;     // pages-1.img (borrows file bytes)
    // Owned digest storage for the rare case where the stored bytes cannot
    // back the span directly (misaligned buffer or big-endian host).
    std::vector<std::uint64_t> digest_storage;
  };

  ImageDir() = default;
  // Copies re-derive their own caches and never alias the source's buffers:
  // snapshots travel by value, and two independent directories must not
  // serialize on one lock or see each other's invalidations.
  ImageDir(const ImageDir& o);
  ImageDir& operator=(const ImageDir& o);
  ImageDir(ImageDir&& o) noexcept = default;
  ImageDir& operator=(ImageDir&& o) noexcept;

  void put(const std::string& name, std::vector<std::uint8_t> bytes,
           std::optional<std::uint64_t> nominal_size = std::nullopt);
  const ImageFile& get(const std::string& name) const;
  bool has(const std::string& name) const { return files_.contains(name); }
  std::vector<std::string> names() const;

  std::uint64_t nominal_total() const;  // snapshot size as seen by storage
  std::uint64_t real_total() const;     // bytes actually held in memory

  // Re-verify the CRC of every file; throws on corruption. Verified once per
  // content generation: put() re-arms the check.
  void validate() const;

  // Lazy decode cache; put() invalidates it. Concurrent reads (shared
  // snapshots restored from several worker threads) are safe; mutation is
  // not thread-safe, like every other container in the model.
  const Decoded& decoded() const;

  const std::map<std::string, ImageFile>& files() const { return files_; }

 private:
  std::map<std::string, ImageFile> files_;
  // The mutex lives behind a shared_ptr so concurrent decoded()/validate()
  // readers of *one* directory serialize cheaply; every copy gets its own
  // mutex (a shared lock would make independent snapshots contend, and a
  // source put() must never invalidate a copy's caches).
  mutable std::shared_ptr<std::mutex> cache_mu_ = std::make_shared<std::mutex>();
  mutable std::shared_ptr<const Decoded> decoded_;
  // Liveness token stamped into every PagesView handed out by decoded();
  // put() flips it false and re-arms a fresh one, so stale borrowed spans
  // fail loudly instead of dangling.
  mutable std::shared_ptr<std::atomic<bool>> live_gen_ =
      std::make_shared<std::atomic<bool>>(true);
  mutable bool validated_ = false;
};

}  // namespace prebake::criu
