#include "criu/dump.hpp"

#include <array>
#include <set>
#include <stdexcept>

namespace prebake::criu {

DumpResult Dumper::dump(os::Pid pid, const DumpOptions& opts) {
  os::Kernel& k = *kernel_;
  obs::Tracer& tr = k.trace();
  const sim::TimePoint t0 = k.sim().now();
  os::Process& target = k.process(pid);
  if (target.state() != os::ProcState::kRunning)
    throw std::logic_error{"criu dump: target is not running"};

  obs::Span dump_span = tr.span("criu.dump", "criu");
  dump_span.attr("pid", static_cast<std::int64_t>(pid));
  if (opts.pre_dump) dump_span.attr("pre_dump", "true");

  const bool privileged = os::has_cap(opts.criu_caps, os::Cap::kSysAdmin) ||
                          os::has_cap(opts.criu_caps, os::Cap::kSysPtrace) ||
                          os::has_cap(opts.criu_caps, os::Cap::kCheckpointRestore);
  if (!privileged)
    throw std::runtime_error{
        "criu dump: need CAP_SYS_ADMIN, CAP_SYS_PTRACE or CAP_CHECKPOINT_RESTORE"};

  // 1. Seize and freeze every thread so the state cannot change under us.
  {
    obs::Span s = tr.span("freeze", "criu");
    k.ptrace_seize(pid, opts.criu_caps);
    k.freeze(pid, opts.criu_caps);
  }

  // 2. Discover resident memory from /proc/$pid/pagemap.
  obs::Span walk_span = tr.span("pagemap-walk", "criu");
  const std::vector<os::PagemapRange> ranges = k.pagemap(pid);
  walk_span.attr("ranges", static_cast<std::uint64_t>(ranges.size()));
  walk_span.end();

  // Parent coverage for incremental dumps: a page is skipped if a parent
  // already holds it and it has not been dirtied since. A pre-dump chain
  // contributes every link's pagemap (nested --prev-images-dir semantics:
  // each link covers only its own round's delta, so coverage is the union).
  std::set<std::pair<os::VmaId, std::uint64_t>> parent_pages;
  const auto cover = [&parent_pages](const ImageDir& link) {
    const auto maps = decode_pagemap(link.get("pagemap.img").bytes);
    for (const PagemapEntry& e : maps)
      for (std::uint64_t p = 0; p < e.pages; ++p)
        parent_pages.emplace(e.vma, e.first_page + p);
  };
  if (opts.parent != nullptr) cover(*opts.parent);
  for (const ImageDir* link : opts.parent_chain)
    if (link != nullptr) cover(*link);
  const bool incremental =
      opts.parent != nullptr || !opts.parent_chain.empty();

  // 3. Inject the parasite into the frozen target.
  obs::Span parasite_span = tr.span("parasite", "criu");
  parasite_span.attr("blob_bytes", opts.parasite_blob_bytes);
  k.inject_parasite(pid, opts.parasite_blob_bytes);
  const std::uint64_t pipe = k.create_pipe();
  parasite_span.end();
  obs::Span stream_span = tr.span("page-stream", "criu");

  // 4. Stream page contents: the parasite reads the target address space and
  // sends pages to the criu process through the pipe.
  std::vector<PagemapEntry> dumped_ranges;
  PagesEntry pages;
  pages.mode = opts.payload_mode;
  std::uint64_t pages_dumped = 0;
  std::uint64_t zero_pages = 0;

  // Zero-page detection (CRIU's PAGE_IS_ZERO): all-zero pages carry no
  // payload; restore maps fresh zero pages instead of reading bytes.
  static const std::uint64_t kZeroDigest = [] {
    const std::array<std::uint8_t, os::kPageSize> zeros{};
    return os::hash_page_bytes(
        std::span<const std::uint8_t, os::kPageSize>{zeros});
  }();

  for (const os::PagemapRange& range : ranges) {
    const os::Vma* vma = target.mm().find(range.vma);
    if (vma == nullptr || vma->name == "[criu-parasite]") continue;

    PagemapEntry current{};
    bool open = false;
    auto flush = [&] {
      if (open && current.pages > 0) dumped_ranges.push_back(current);
      open = false;
    };
    for (std::uint64_t i = 0; i < range.pages; ++i) {
      const std::uint64_t page = range.first_page + i;
      const bool dirty = page < vma->dirty.size() && vma->dirty[page];
      if (incremental && !dirty &&
          parent_pages.contains({range.vma, page})) {
        flush();
        continue;  // unchanged since parent snapshot
      }
      const std::uint64_t digest = vma->source->page_digest(page);
      const bool is_zero = digest == kZeroDigest;
      if (!open || current.zero != is_zero) {
        flush();
        current = PagemapEntry{range.vma, page, 0, is_zero};
        open = true;
      }
      ++current.pages;
      if (is_zero) {
        ++zero_pages;
        continue;  // no pipe transfer, no payload
      }
      ++pages_dumped;

      k.pipe_transfer(pipe, os::kPageSize);
      if (opts.payload_mode == PayloadMode::kFull) {
        std::array<std::uint8_t, os::kPageSize> buf{};
        vma->source->fill(page, std::span<std::uint8_t, os::kPageSize>{buf});
        pages.raw.insert(pages.raw.end(), buf.begin(), buf.end());
        pages.digests.push_back(os::hash_page_bytes(
            std::span<const std::uint8_t, os::kPageSize>{buf}));
      } else {
        pages.digests.push_back(digest);
      }
    }
    flush();
  }

  stream_span.attr("pages", pages_dumped);
  stream_span.attr("zero_pages", zero_pages);
  stream_span.end();

  // 5. Serialize metadata.
  obs::Span serialize_span = tr.span("serialize", "criu");
  InventoryEntry inv;
  inv.root_pid = pid;
  inv.name = target.name();
  inv.argv = target.argv();
  inv.n_threads = static_cast<std::uint32_t>(target.threads().size());
  inv.ns = target.ns();
  inv.caps = static_cast<std::uint32_t>(target.caps());

  std::vector<CoreEntry> cores;
  for (const os::Thread& t : target.threads())
    cores.push_back(CoreEntry{t.tid, t.regs});

  std::vector<VmaEntry> vmas;
  for (const os::Vma& vma : target.mm().vmas()) {
    if (vma.name == "[criu-parasite]") continue;
    VmaEntry e;
    e.id = vma.id;
    e.start = vma.start;
    e.length = vma.length;
    e.prot = static_cast<std::uint8_t>(vma.prot);
    e.kind = static_cast<std::uint8_t>(vma.kind);
    e.name = vma.name;
    e.backing_path = vma.backing_path;
    if (const auto* pattern = dynamic_cast<const os::PatternSource*>(vma.source.get())) {
      e.source_kind = SourceKind::kPattern;
      e.pattern_seed = pattern->seed();
      e.pattern_version = pattern->version();
    } else {
      e.source_kind = SourceKind::kBuffer;
    }
    vmas.push_back(std::move(e));
  }

  std::vector<FileEntry> files;
  for (const auto& [fd, desc] : target.fds())
    files.push_back(FileEntry{fd, static_cast<std::uint8_t>(desc.kind),
                              desc.path, desc.pipe_id});

  DumpResult result;
  ImageDir& dir = result.images;
  dir.put("inventory.img", encode_inventory(inv));
  dir.put("core-" + std::to_string(pid) + ".img", encode_core(cores));
  dir.put("mm.img", encode_mm(vmas));
  dir.put("pagemap.img", encode_pagemap(dumped_ranges));
  const std::uint64_t payload_bytes = pages_dumped * os::kPageSize;
  dir.put("pages-1.img", encode_pages(pages), payload_bytes);
  dir.put("files.img", encode_files(files));

  StatsEntry stats;
  stats.pages_dumped = pages_dumped;
  stats.zero_pages = zero_pages;
  stats.payload_bytes = payload_bytes;
  stats.warmup_requests = opts.warmup_requests;
  serialize_span.end();

  // 6. Cure the parasite and release the target.
  obs::Span cure_span = tr.span("cure", "criu");
  k.cure_parasite(pid);
  if (opts.pre_dump) {
    k.clear_soft_dirty(pid);
    k.thaw(pid);
  } else if (opts.leave_running) {
    k.thaw(pid);
  } else {
    k.thaw(pid);
    k.kill_process(pid);
    k.reap(pid);
  }

  cure_span.end();

  // 7. Persist to storage (image files hit the disk at write bandwidth).
  std::uint64_t metadata_bytes = 0;
  for (const auto& [name, f] : dir.files())
    if (name != "pages-1.img") metadata_bytes += f.nominal_size;
  stats.metadata_bytes = metadata_bytes;

  if (!opts.fs_prefix.empty()) {
    obs::Span persist_span = tr.span("persist", "criu.io");
    faults::Injector& inj = k.faults();
    for (const auto& [name, f] : dir.files()) {
      // Per-image write span, mirroring the restore side's "read:<name>".
      obs::Span write_span;
      if (tr.enabled()) {
        write_span = tr.span("write:" + name, "criu.io");
        write_span.attr("bytes", f.nominal_size);
        tr.count("criu.bytes_written", f.nominal_size);
      }
      k.fs().create(opts.fs_prefix + name, f.nominal_size);
      // Freshly written images sit in the page cache.
      k.fs().warm(opts.fs_prefix + name);
      k.sim().advance(k.costs().disk_write_cost(f.nominal_size));
      // A truncated persist: the write returned short and nobody checked.
      // Restore detects the size mismatch and fails typed; the platform
      // heals it by quarantining the snapshot and re-baking.
      if (f.nominal_size > 0 && inj.enabled() &&
          inj.fires(faults::FaultSite::kTruncatedWrite)) {
        write_span.attr("truncated", "true");
        k.fs().truncate(opts.fs_prefix + name, f.nominal_size / 2);
      }
    }
  }

  stats.dump_duration_ns = (k.sim().now() - t0).nanos_count();
  dir.put("stats.img", encode_stats(stats));
  if (!opts.fs_prefix.empty()) {
    k.fs().create(opts.fs_prefix + "stats.img",
                  dir.get("stats.img").nominal_size);
    k.fs().warm(opts.fs_prefix + "stats.img");
  }

  result.stats = stats;
  result.duration = sim::Duration::nanos(stats.dump_duration_ns);
  dump_span.attr("pages", pages_dumped);
  dump_span.attr("payload_bytes", payload_bytes);
  tr.measure("criu.dump_ms", result.duration.to_millis());
  return result;
}

}  // namespace prebake::criu
