// The restore side of the CRIU-model engine.
//
// Mirrors CRIU's restore: the restorer process reads the image files,
// transmutes itself into the checkpointed process (clone — optionally with
// the original pid, which needs CAP_CHECKPOINT_RESTORE), recreates
// namespaces and open files, then remaps and faults the checkpointed memory.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "criu/error.hpp"
#include "criu/image.hpp"
#include "criu/paging.hpp"
#include "criu/ws.hpp"
#include "os/kernel.hpp"

namespace prebake::criu {

class PageStore;

struct RestoreOptions {
  // The special members are defaulted inside this pragma region so copying
  // an options struct does not re-trigger the deprecation warnings on the
  // legacy lazy fields below — only *naming* them should.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  RestoreOptions() = default;
  RestoreOptions(const RestoreOptions&) = default;
  RestoreOptions(RestoreOptions&&) = default;
  RestoreOptions& operator=(const RestoreOptions&) = default;
  RestoreOptions& operator=(RestoreOptions&&) = default;
  ~RestoreOptions() = default;
#pragma GCC diagnostic pop

  // Reuse the checkpointed pid (requires CAP_CHECKPOINT_RESTORE or root).
  bool restore_original_pid = false;
  // Recompute every page digest after mapping and compare against the image
  // (integrity check; costs CPU time).
  bool verify_pages = false;
  // Keep images in memory / page cache (the in-memory CRIU optimization of
  // Venkatesh et al. [26], discussed as future work in Section 7): image
  // reads are charged at page-cache bandwidth even on first restore.
  bool in_memory = false;
  // N concurrent restores sharing the storage device (processor-sharing
  // approximation); used by the concurrency ablation.
  double io_contention = 1.0;
  os::Cap criu_caps = os::Cap::kSysPtrace | os::Cap::kSysAdmin;
  // Where the image files live in the simulated filesystem ("" = images were
  // never persisted; no storage read is charged, only decode + mapping).
  // For a pre-dump chain this is the *final* link's directory; earlier links
  // are read from nested "parent/" subdirectories of it, mirroring CRIU's
  // --prev-images-dir layout (each link names its payload pages-1.img, so a
  // flat directory would alias the links' files).
  std::string fs_prefix;
  // The images live on a remote snapshot registry ("checkpoint/restore as
  // a service", Section 7): a node's first read of each file is charged at
  // network bandwidth, after which it is cached locally.
  bool remote_fetch = false;
  // How the memory replay pages the process in (DESIGN.md §6j): eager
  // (default), lazy (CRIU's userfaultfd post-copy mode — an eager prefix per
  // pagemap run, the rest served on demand by the returned LazyPagesServer),
  // or REAP-style working-set record/prefetch.
  PagingPolicy paging;
  // Pre-PagingPolicy spelling of the lazy mode, kept as aliases for exactly
  // one PR: when lazy_pages is set it wins over `paging` (see
  // effective_paging), so old-field configs behave identically.
  [[deprecated("use paging = PagingPolicy::lazy(fraction)")]]
  bool lazy_pages = false;
  [[deprecated("use paging = PagingPolicy::lazy(fraction)")]]
  double lazy_working_set = 0.25;  // fraction of pages restored eagerly
  // Remote-fetch resilience: a registry transfer that disconnects mid-flight
  // is retried up to this many attempts, sleeping backoff * attempt *
  // (1 + jitter) between tries, then fails with RestoreError{kFetchFailed}.
  // With no faults injected the fetch succeeds on the first attempt and
  // these knobs charge nothing.
  int fetch_max_attempts = 3;
  sim::Duration fetch_retry_backoff = sim::Duration::millis(10);
  // Node-local content-addressed page store (DESIGN.md §6f). When set,
  // remote fetches of the page payload negotiate per-page digests and
  // transfer only what the store is missing, and restores materialize (or
  // clone) a frozen per-snapshot template keyed by `store_key`. Delta
  // negotiation also serves working-set prefetch restores (over the WS
  // pages only); template clone requires eager paging — see validate().
  // Null = the legacy behavior everywhere.
  PageStore* page_store = nullptr;
  // The snapshot's identity in the node store (e.g. its node-local image
  // prefix). Empty disables template materialization/cloning even with a
  // store attached; delta transfer still applies. Requires eager paging: a
  // non-eager restore leaves a lazy tail a frozen template would miss, so
  // validate() rejects the combination (RestoreError{kConfig}) instead of
  // the silent downgrade the pre-PagingPolicy code performed.
  std::string store_key;

  // The paging policy this restore actually runs under: the deprecated
  // lazy_pages/lazy_working_set pair wins when set, so configs written
  // against the old API keep their exact behavior for this PR.
  PagingPolicy effective_paging() const {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    if (lazy_pages) return PagingPolicy::lazy(lazy_working_set);
#pragma GCC diagnostic pop
    return paging;
  }

  // Reject contradictory option combinations up front with a typed,
  // non-transient error (retrying a caller bug fails identically forever).
  // Called by Restorer::restore_chain on every restore.
  void validate() const {
    const PagingPolicy p = effective_paging();
    if (p.mode != PagingMode::kEager && page_store != nullptr &&
        !store_key.empty())
      throw RestoreError{
          RestoreErrorKind::kConfig,
          std::string{"restore: template clone (store_key) requires eager "
                      "paging, got "} +
              paging_mode_name(p.mode)};
  }
};

// A run of not-yet-mapped pages handed to the uffd server. Run-length
// encoded: a lazy restore of a large VMA queues one entry per pagemap run,
// not one pair per page.
struct LazyRun {
  os::VmaId vma = 0;
  std::uint64_t first_page = 0;
  std::uint64_t pages = 0;
};

// The uffd page server left behind by a lazy restore: it owns the pages that
// were *not* eagerly mapped and faults them into the target on demand.
class LazyPagesServer {
 public:
  LazyPagesServer() = default;
  LazyPagesServer(os::Kernel& kernel, os::Pid pid, std::string fs_prefix,
                  std::vector<LazyRun> pending);

  // Fault `pages` pending pages into the target (first-touch order);
  // charges page-fault plus image-read costs. Returns pages actually served.
  // Under an enabled fault injector the server may die once (kLazyServerDeath:
  // the supervisor respawns it and the faulting thread eats the latency) and
  // transient image-read errors are retried a bounded number of times before
  // surfacing as RestoreError{kIoError}.
  std::uint64_t page_in(std::uint64_t pages);
  // Drain everything (e.g. before a full-memory operation).
  std::uint64_t page_in_all() { return page_in(pending_pages()); }

  std::uint64_t pending_pages() const { return remaining_; }
  bool done() const { return pending_pages() == 0; }
  // Times the uffd server died and was respawned (at most 1 per server).
  std::uint32_t deaths() const { return deaths_; }

 private:
  os::Kernel* kernel_ = nullptr;
  os::Pid pid_ = os::kNoPid;
  std::string fs_prefix_;
  std::vector<LazyRun> pending_;
  std::size_t run_ = 0;        // current run index
  std::uint64_t run_off_ = 0;  // pages already served from pending_[run_]
  std::uint64_t remaining_ = 0;
  bool died_ = false;
  std::uint32_t deaths_ = 0;
};

struct RestoreResult {
  os::Pid pid = os::kNoPid;
  std::uint64_t pages_restored = 0;
  std::uint64_t bytes_read = 0;
  // Bytes pulled from the remote snapshot registry (remote_fetch restores
  // whose image files were not yet in the node-local cache). 0 on local
  // restores and on cache hits — the node-locality signal the cluster
  // layer's placement policies optimize for.
  std::uint64_t remote_bytes = 0;
  sim::Duration duration;
  // Present iff the restore ran under a non-eager paging mode (lazy, or the
  // working-set modes, which lazy-serve their cold tail).
  std::shared_ptr<LazyPagesServer> lazy_server;
  // Working-set restore (DESIGN.md §6j). The recorder is present iff the
  // restore ran in ws-recording mode; the platform closes it with
  // finish_ws_recording after the first invocation completes.
  std::shared_ptr<WsRecorder> ws_recorder;
  // Pages eagerly mapped from the recorded working set (prefetch mode).
  std::uint64_t ws_prefetched_pages = 0;
  // A requested WS prefetch downgraded to pure-lazy because ws-1.img was
  // missing, truncated, or corrupt; kind/detail carry the typed warning.
  bool ws_fallback = false;
  RestoreErrorKind ws_fallback_kind = RestoreErrorKind::kMissingImage;
  std::string ws_fallback_detail;
  // Page-store accounting (zero / false without opts.page_store). Hit pages
  // are payload pages the delta negotiation found already materialized on
  // the node; delta bytes are the payload that actually crossed the wire.
  std::uint64_t store_hit_pages = 0;
  std::uint64_t store_delta_bytes = 0;
  // This restore was served by COW-cloning the node's frozen template.
  bool template_clone = false;
  // This restore left a frozen template behind (first restore on the node).
  bool template_materialized = false;
};

class Restorer {
 public:
  explicit Restorer(os::Kernel& kernel) : kernel_{&kernel} {}

  RestoreResult restore(const ImageDir& images, const RestoreOptions& opts = {});
  // Restore from an incremental chain (pre-dump(s) followed by the final
  // dump); metadata comes from the last image, memory from the whole chain.
  RestoreResult restore_chain(std::span<const ImageDir* const> chain,
                              const RestoreOptions& opts = {});

 private:
  // Fast path: the node store already holds a frozen template for
  // opts.store_key — COW-clone it, skipping image reads entirely.
  RestoreResult clone_from_template(std::span<const ImageDir* const> chain,
                                    const RestoreOptions& opts);

  os::Kernel* kernel_;
};

}  // namespace prebake::criu
