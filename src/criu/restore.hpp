// The restore side of the CRIU-model engine.
//
// Mirrors CRIU's restore: the restorer process reads the image files,
// transmutes itself into the checkpointed process (clone — optionally with
// the original pid, which needs CAP_CHECKPOINT_RESTORE), recreates
// namespaces and open files, then remaps and faults the checkpointed memory.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "criu/error.hpp"
#include "criu/image.hpp"
#include "os/kernel.hpp"

namespace prebake::criu {

class PageStore;

struct RestoreOptions {
  // Reuse the checkpointed pid (requires CAP_CHECKPOINT_RESTORE or root).
  bool restore_original_pid = false;
  // Recompute every page digest after mapping and compare against the image
  // (integrity check; costs CPU time).
  bool verify_pages = false;
  // Keep images in memory / page cache (the in-memory CRIU optimization of
  // Venkatesh et al. [26], discussed as future work in Section 7): image
  // reads are charged at page-cache bandwidth even on first restore.
  bool in_memory = false;
  // N concurrent restores sharing the storage device (processor-sharing
  // approximation); used by the concurrency ablation.
  double io_contention = 1.0;
  os::Cap criu_caps = os::Cap::kSysPtrace | os::Cap::kSysAdmin;
  // Where the image files live in the simulated filesystem ("" = images were
  // never persisted; no storage read is charged, only decode + mapping).
  // For a pre-dump chain this is the *final* link's directory; earlier links
  // are read from nested "parent/" subdirectories of it, mirroring CRIU's
  // --prev-images-dir layout (each link names its payload pages-1.img, so a
  // flat directory would alias the links' files).
  std::string fs_prefix;
  // The images live on a remote snapshot registry ("checkpoint/restore as
  // a service", Section 7): a node's first read of each file is charged at
  // network bandwidth, after which it is cached locally.
  bool remote_fetch = false;
  // Lazy-pages (post-copy) restore, CRIU's userfaultfd mode: only
  // `lazy_working_set` of each VMA's pages are mapped eagerly; the rest are
  // served on demand by the returned LazyPagesServer when the process first
  // touches them. Trades restore latency for first-touch page faults.
  bool lazy_pages = false;
  double lazy_working_set = 0.25;  // fraction of pages restored eagerly
  // Remote-fetch resilience: a registry transfer that disconnects mid-flight
  // is retried up to this many attempts, sleeping backoff * attempt *
  // (1 + jitter) between tries, then fails with RestoreError{kFetchFailed}.
  // With no faults injected the fetch succeeds on the first attempt and
  // these knobs charge nothing.
  int fetch_max_attempts = 3;
  sim::Duration fetch_retry_backoff = sim::Duration::millis(10);
  // Node-local content-addressed page store (DESIGN.md §6f). When set,
  // remote fetches of the page payload negotiate per-page digests and
  // transfer only what the store is missing, and restores materialize (or
  // clone) a frozen per-snapshot template keyed by `store_key`. Ignored
  // under lazy_pages (the uffd server owns the page lifecycle there).
  // Null = the legacy behavior everywhere.
  PageStore* page_store = nullptr;
  // The snapshot's identity in the node store (e.g. its node-local image
  // prefix). Empty disables template materialization/cloning even with a
  // store attached; delta transfer still applies.
  std::string store_key;
};

// A run of not-yet-mapped pages handed to the uffd server. Run-length
// encoded: a lazy restore of a large VMA queues one entry per pagemap run,
// not one pair per page.
struct LazyRun {
  os::VmaId vma = 0;
  std::uint64_t first_page = 0;
  std::uint64_t pages = 0;
};

// The uffd page server left behind by a lazy restore: it owns the pages that
// were *not* eagerly mapped and faults them into the target on demand.
class LazyPagesServer {
 public:
  LazyPagesServer() = default;
  LazyPagesServer(os::Kernel& kernel, os::Pid pid, std::string fs_prefix,
                  std::vector<LazyRun> pending);

  // Fault `pages` pending pages into the target (first-touch order);
  // charges page-fault plus image-read costs. Returns pages actually served.
  // Under an enabled fault injector the server may die once (kLazyServerDeath:
  // the supervisor respawns it and the faulting thread eats the latency) and
  // transient image-read errors are retried a bounded number of times before
  // surfacing as RestoreError{kIoError}.
  std::uint64_t page_in(std::uint64_t pages);
  // Drain everything (e.g. before a full-memory operation).
  std::uint64_t page_in_all() { return page_in(pending_pages()); }

  std::uint64_t pending_pages() const { return remaining_; }
  bool done() const { return pending_pages() == 0; }
  // Times the uffd server died and was respawned (at most 1 per server).
  std::uint32_t deaths() const { return deaths_; }

 private:
  os::Kernel* kernel_ = nullptr;
  os::Pid pid_ = os::kNoPid;
  std::string fs_prefix_;
  std::vector<LazyRun> pending_;
  std::size_t run_ = 0;        // current run index
  std::uint64_t run_off_ = 0;  // pages already served from pending_[run_]
  std::uint64_t remaining_ = 0;
  bool died_ = false;
  std::uint32_t deaths_ = 0;
};

struct RestoreResult {
  os::Pid pid = os::kNoPid;
  std::uint64_t pages_restored = 0;
  std::uint64_t bytes_read = 0;
  // Bytes pulled from the remote snapshot registry (remote_fetch restores
  // whose image files were not yet in the node-local cache). 0 on local
  // restores and on cache hits — the node-locality signal the cluster
  // layer's placement policies optimize for.
  std::uint64_t remote_bytes = 0;
  sim::Duration duration;
  // Present iff the restore ran with lazy_pages.
  std::shared_ptr<LazyPagesServer> lazy_server;
  // Page-store accounting (zero / false without opts.page_store). Hit pages
  // are payload pages the delta negotiation found already materialized on
  // the node; delta bytes are the payload that actually crossed the wire.
  std::uint64_t store_hit_pages = 0;
  std::uint64_t store_delta_bytes = 0;
  // This restore was served by COW-cloning the node's frozen template.
  bool template_clone = false;
  // This restore left a frozen template behind (first restore on the node).
  bool template_materialized = false;
};

class Restorer {
 public:
  explicit Restorer(os::Kernel& kernel) : kernel_{&kernel} {}

  RestoreResult restore(const ImageDir& images, const RestoreOptions& opts = {});
  // Restore from an incremental chain (pre-dump(s) followed by the final
  // dump); metadata comes from the last image, memory from the whole chain.
  RestoreResult restore_chain(std::span<const ImageDir* const> chain,
                              const RestoreOptions& opts = {});

 private:
  // Fast path: the node store already holds a frozen template for
  // opts.store_key — COW-clone it, skipping image reads entirely.
  RestoreResult clone_from_template(std::span<const ImageDir* const> chain,
                                    const RestoreOptions& opts);

  os::Kernel* kernel_;
};

}  // namespace prebake::criu
