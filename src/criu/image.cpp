#include "criu/image.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "criu/crc32.hpp"
#include "criu/error.hpp"
#include "criu/wire.hpp"

namespace prebake::criu {

namespace {

// Frame an image body with the magic/type header and a trailing CRC of
// everything before it.
std::vector<std::uint8_t> frame(ImageType type, Writer body) {
  Writer w;
  w.u32(kImageMagic);
  w.u32(static_cast<std::uint32_t>(type));
  w.u32(kFormatVersion);
  w.raw(body.bytes());
  const std::uint32_t crc = crc32(w.bytes());
  w.u32(crc);
  return w.take();
}

// Strip and verify the header/CRC; returns a Reader over the body.
Reader unframe(ImageType expected, std::span<const std::uint8_t> img) {
  if (img.size() < 16) throw std::runtime_error{"image too small"};
  const std::span<const std::uint8_t> without_crc{img.data(), img.size() - 4};
  Reader tail{img.subspan(img.size() - 4)};
  if (tail.u32() != crc32(without_crc))
    throw std::runtime_error{"image CRC mismatch"};
  Reader r{without_crc};
  if (r.u32() != kImageMagic) throw std::runtime_error{"bad image magic"};
  const auto type = static_cast<ImageType>(r.u32());
  if (type != expected) throw std::runtime_error{"unexpected image type"};
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion)
    throw std::runtime_error{"unsupported image format version"};
  return r;
}

}  // namespace

std::vector<std::uint8_t> encode_inventory(const InventoryEntry& e) {
  Writer w;
  w.u32(e.version);
  w.i32(e.root_pid);
  w.str(e.name);
  w.u32(static_cast<std::uint32_t>(e.argv.size()));
  for (const auto& a : e.argv) w.str(a);
  w.u32(e.n_threads);
  w.u64(e.ns.pid_ns);
  w.u64(e.ns.mnt_ns);
  w.u64(e.ns.net_ns);
  w.u32(e.caps);
  return frame(ImageType::kInventory, std::move(w));
}

InventoryEntry decode_inventory(std::span<const std::uint8_t> img) {
  Reader r = unframe(ImageType::kInventory, img);
  InventoryEntry e;
  e.version = r.u32();
  e.root_pid = r.i32();
  e.name = r.str();
  const std::uint32_t argc = r.u32();
  for (std::uint32_t i = 0; i < argc; ++i) e.argv.push_back(r.str());
  e.n_threads = r.u32();
  e.ns.pid_ns = r.u64();
  e.ns.mnt_ns = r.u64();
  e.ns.net_ns = r.u64();
  e.caps = r.u32();
  return e;
}

std::vector<std::uint8_t> encode_core(const std::vector<CoreEntry>& cores) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(cores.size()));
  for (const CoreEntry& c : cores) {
    w.i32(c.tid);
    for (std::uint64_t reg : c.regs) w.u64(reg);
  }
  return frame(ImageType::kCore, std::move(w));
}

std::vector<CoreEntry> decode_core(std::span<const std::uint8_t> img) {
  Reader r = unframe(ImageType::kCore, img);
  const std::uint32_t n = r.u32();
  std::vector<CoreEntry> cores(n);
  for (CoreEntry& c : cores) {
    c.tid = r.i32();
    for (std::uint64_t& reg : c.regs) reg = r.u64();
  }
  return cores;
}

std::vector<std::uint8_t> encode_mm(const std::vector<VmaEntry>& vmas) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(vmas.size()));
  for (const VmaEntry& v : vmas) {
    w.u32(v.id);
    w.u64(v.start);
    w.u64(v.length);
    w.u8(v.prot);
    w.u8(v.kind);
    w.str(v.name);
    w.str(v.backing_path);
    w.u8(static_cast<std::uint8_t>(v.source_kind));
    w.u64(v.pattern_seed);
    w.u64(v.pattern_version);
  }
  return frame(ImageType::kMm, std::move(w));
}

std::vector<VmaEntry> decode_mm(std::span<const std::uint8_t> img) {
  Reader r = unframe(ImageType::kMm, img);
  const std::uint32_t n = r.u32();
  std::vector<VmaEntry> vmas(n);
  for (VmaEntry& v : vmas) {
    v.id = r.u32();
    v.start = r.u64();
    v.length = r.u64();
    v.prot = r.u8();
    v.kind = r.u8();
    v.name = r.str();
    v.backing_path = r.str();
    v.source_kind = static_cast<SourceKind>(r.u8());
    v.pattern_seed = r.u64();
    v.pattern_version = r.u64();
  }
  return vmas;
}

std::vector<std::uint8_t> encode_pagemap(const std::vector<PagemapEntry>& es) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(es.size()));
  for (const PagemapEntry& e : es) {
    w.u32(e.vma);
    w.u64(e.first_page);
    w.u64(e.pages);
    w.u8(e.zero ? 1 : 0);
  }
  return frame(ImageType::kPagemap, std::move(w));
}

std::vector<PagemapEntry> decode_pagemap(std::span<const std::uint8_t> img) {
  Reader r = unframe(ImageType::kPagemap, img);
  const std::uint32_t n = r.u32();
  std::vector<PagemapEntry> es(n);
  for (PagemapEntry& e : es) {
    e.vma = r.u32();
    e.first_page = r.u64();
    e.pages = r.u64();
    e.zero = r.u8() != 0;
  }
  return es;
}

std::vector<std::uint8_t> encode_pages(const PagesEntry& e) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(e.mode));
  w.u32(static_cast<std::uint32_t>(e.digests.size()));
  // Seven zero bytes place the digest array at file offset 24 (the frame
  // header is 12 bytes), an 8-byte boundary: decode_pages_spans can then
  // hand out a borrowed uint64 span straight over the stored bytes.
  w.pad(7);
  for (std::uint64_t d : e.digests) w.u64(d);
  w.u64(e.raw.size());
  w.raw(e.raw);
  return frame(ImageType::kPages, std::move(w));
}

PagesEntry decode_pages(std::span<const std::uint8_t> img) {
  Reader r = unframe(ImageType::kPages, img);
  PagesEntry e;
  e.mode = static_cast<PayloadMode>(r.u8());
  const std::uint32_t n = r.u32();
  r.skip(7);
  e.digests.resize(n);
  for (std::uint64_t& d : e.digests) d = r.u64();
  const std::uint64_t raw_len = r.u64();
  e.raw = r.raw(raw_len);
  return e;
}

PagesSpans decode_pages_spans(std::span<const std::uint8_t> img) {
  Reader r = unframe(ImageType::kPages, img);
  PagesSpans s;
  s.mode = static_cast<PayloadMode>(r.u8());
  s.n_pages = r.u32();
  r.skip(7);
  s.digest_bytes = r.view(static_cast<std::size_t>(s.n_pages) * 8);
  const std::uint64_t raw_len = r.u64();
  s.raw = r.view(raw_len);
  return s;
}

std::vector<std::uint8_t> encode_files(const std::vector<FileEntry>& es) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(es.size()));
  for (const FileEntry& e : es) {
    w.i32(e.fd);
    w.u8(e.kind);
    w.str(e.path);
    w.u64(e.pipe_id);
  }
  return frame(ImageType::kFiles, std::move(w));
}

std::vector<FileEntry> decode_files(std::span<const std::uint8_t> img) {
  Reader r = unframe(ImageType::kFiles, img);
  const std::uint32_t n = r.u32();
  std::vector<FileEntry> es(n);
  for (FileEntry& e : es) {
    e.fd = r.i32();
    e.kind = r.u8();
    e.path = r.str();
    e.pipe_id = r.u64();
  }
  return es;
}

std::vector<std::uint8_t> encode_stats(const StatsEntry& e) {
  Writer w;
  w.u64(e.pages_dumped);
  w.u64(e.zero_pages);
  w.u64(e.payload_bytes);
  w.u64(e.metadata_bytes);
  w.i64(e.dump_duration_ns);
  w.u32(e.warmup_requests);
  return frame(ImageType::kStats, std::move(w));
}

StatsEntry decode_stats(std::span<const std::uint8_t> img) {
  Reader r = unframe(ImageType::kStats, img);
  StatsEntry e;
  e.pages_dumped = r.u64();
  e.zero_pages = r.u64();
  e.payload_bytes = r.u64();
  e.metadata_bytes = r.u64();
  e.dump_duration_ns = r.i64();
  e.warmup_requests = r.u32();
  return e;
}

std::vector<std::uint8_t> encode_ws(const WorkingSetImage& ws) {
  Writer w;
  w.u32(ws.version);
  w.u32(static_cast<std::uint32_t>(ws.runs.size()));
  w.u64(ws.total_pages);
  for (const WsRun& run : ws.runs) {
    w.u32(run.vma);
    w.u64(run.first_page);
    w.u64(run.pages);
  }
  return frame(ImageType::kWs, std::move(w));
}

// Unlike the other decoders, decode_ws classifies its failures: a damaged
// working-set image must downgrade the restore to pure-lazy, not fail it, so
// the caller needs a kind() to switch on (and to surface in the warning).
WorkingSetImage decode_ws(std::span<const std::uint8_t> img) {
  if (img.size() < 16)
    throw RestoreError{RestoreErrorKind::kTruncatedImage,
                       "ws-1.img: file shorter than the image header"};
  const std::span<const std::uint8_t> without_crc{img.data(), img.size() - 4};
  Reader tail{img.subspan(img.size() - 4)};
  if (tail.u32() != crc32(without_crc))
    throw RestoreError{RestoreErrorKind::kCorruptImage,
                       "ws-1.img: CRC mismatch"};
  Reader r{without_crc};
  if (r.u32() != kImageMagic)
    throw RestoreError{RestoreErrorKind::kCorruptImage,
                       "ws-1.img: bad image magic"};
  if (static_cast<ImageType>(r.u32()) != ImageType::kWs)
    throw RestoreError{RestoreErrorKind::kCorruptImage,
                       "ws-1.img: unexpected image type"};
  if (r.u32() != kFormatVersion)
    throw RestoreError{RestoreErrorKind::kCorruptImage,
                       "ws-1.img: unsupported format version"};
  WorkingSetImage ws;
  try {
    ws.version = r.u32();
    const std::uint32_t n_runs = r.u32();
    ws.total_pages = r.u64();
    ws.runs.reserve(n_runs);
    for (std::uint32_t i = 0; i < n_runs; ++i) {
      WsRun run;
      run.vma = r.u32();
      run.first_page = r.u64();
      run.pages = r.u64();
      ws.runs.push_back(run);
    }
  } catch (const std::runtime_error&) {
    // Reader bounds failures: the CRC passed but the run table is cut short
    // relative to its own count — a truncated body.
    throw RestoreError{RestoreErrorKind::kTruncatedImage,
                       "ws-1.img: run table truncated"};
  }
  std::uint64_t sum = 0;
  for (const WsRun& run : ws.runs) {
    if (run.pages == 0)
      throw RestoreError{RestoreErrorKind::kCorruptImage,
                         "ws-1.img: empty run"};
    sum += run.pages;
  }
  if (sum != ws.total_pages)
    throw RestoreError{RestoreErrorKind::kCorruptImage,
                       "ws-1.img: run total does not match header"};
  return ws;
}

ImageDir::ImageDir(const ImageDir& o) : files_{o.files_} {
  // Fresh mutex, liveness token and (empty) decode cache: a copy re-derives
  // its caches from its own bytes and never aliases the source's buffers —
  // and two independent snapshots never serialize on one lock.
  validated_ = o.validated_;
}

ImageDir& ImageDir::operator=(const ImageDir& o) {
  if (this == &o) return *this;
  const std::lock_guard lock{*cache_mu_};
  live_gen_->store(false, std::memory_order_release);
  live_gen_ = std::make_shared<std::atomic<bool>>(true);
  decoded_.reset();
  files_ = o.files_;
  validated_ = o.validated_;
  return *this;
}

ImageDir& ImageDir::operator=(ImageDir&& o) noexcept {
  if (this == &o) return *this;
  // The overwritten directory's borrowed views die with its bytes; flip
  // their token before the buffers go away. The moved-in views stay valid:
  // their spans point into vector buffers that move wholesale.
  live_gen_->store(false, std::memory_order_release);
  files_ = std::move(o.files_);
  cache_mu_ = std::move(o.cache_mu_);
  decoded_ = std::move(o.decoded_);
  live_gen_ = std::move(o.live_gen_);
  validated_ = o.validated_;
  return *this;
}

void ImageDir::put(const std::string& name, std::vector<std::uint8_t> bytes,
                   std::optional<std::uint64_t> nominal_size) {
  {
    const std::lock_guard lock{*cache_mu_};
    // Invalidate borrowed views *before* the old bytes can go away, so a
    // stale PagesView fails loudly instead of reading freed memory.
    live_gen_->store(false, std::memory_order_release);
    live_gen_ = std::make_shared<std::atomic<bool>>(true);
    decoded_.reset();
    validated_ = false;
  }
  ImageFile f;
  f.nominal_size = nominal_size.value_or(bytes.size());
  f.bytes = std::move(bytes);
  files_[name] = std::move(f);
}

const ImageDir::ImageFile& ImageDir::get(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end())
    throw std::runtime_error{"ImageDir: missing image file " + name};
  return it->second;
}

std::vector<std::string> ImageDir::names() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, f] : files_) out.push_back(name);
  return out;
}

std::uint64_t ImageDir::nominal_total() const {
  std::uint64_t total = 0;
  for (const auto& [name, f] : files_) total += f.nominal_size;
  return total;
}

std::uint64_t ImageDir::real_total() const {
  std::uint64_t total = 0;
  for (const auto& [name, f] : files_) total += f.bytes.size();
  return total;
}

void ImageDir::validate() const {
  const std::lock_guard lock{*cache_mu_};
  if (validated_) return;
  for (const auto& [name, f] : files_) {
    // The working-set image is advisory: damage to it downgrades the restore
    // to pure-lazy (decode_ws throws typed errors the restore path catches),
    // so it must not fail whole-directory validation.
    if (name == kWsImageName) continue;
    if (f.bytes.size() < 16)
      throw std::runtime_error{"ImageDir: file too small: " + name};
    const std::span<const std::uint8_t> body{f.bytes.data(), f.bytes.size() - 4};
    Reader tail{std::span<const std::uint8_t>{f.bytes.data() + f.bytes.size() - 4, 4}};
    if (tail.u32() != crc32(body))
      throw std::runtime_error{"ImageDir: CRC mismatch in " + name};
  }
  validated_ = true;
}

const ImageDir::Decoded& ImageDir::decoded() const {
  const std::lock_guard lock{*cache_mu_};
  if (!decoded_) {
    auto d = std::make_shared<Decoded>();
    if (has("inventory.img")) {
      d->inventory = decode_inventory(get("inventory.img").bytes);
      const std::string core =
          "core-" + std::to_string(d->inventory->root_pid) + ".img";
      if (has(core)) d->cores = decode_core(get(core).bytes);
    }
    if (has("mm.img")) d->vmas = decode_mm(get("mm.img").bytes);
    if (has("files.img")) d->files = decode_files(get("files.img").bytes);
    if (has("pagemap.img")) d->pagemap = decode_pagemap(get("pagemap.img").bytes);
    if (has("pages-1.img")) {
      // Zero-copy: the view's spans borrow the stored file bytes (v4 pads
      // the digest array to an 8-byte file offset for exactly this).
      const PagesSpans ps = decode_pages_spans(get("pages-1.img").bytes);
      PagesView v;
      v.mode_ = ps.mode;
      v.n_pages_ = ps.n_pages;
      v.raw_ = ps.raw;
      if constexpr (std::endian::native == std::endian::little) {
        const auto* base = ps.digest_bytes.data();
        if (reinterpret_cast<std::uintptr_t>(base) % alignof(std::uint64_t) == 0)
          v.digests_ = {reinterpret_cast<const std::uint64_t*>(base), ps.n_pages};
      }
      if (v.digests_.data() == nullptr && ps.n_pages > 0) {
        // Fallback: misaligned buffer or big-endian host — decode into
        // cache-owned storage (still one decode per content generation).
        d->digest_storage.resize(ps.n_pages);
        for (std::uint32_t i = 0; i < ps.n_pages; ++i) {
          std::uint64_t w = 0;
          for (std::size_t b = 0; b < 8; ++b)
            w |= static_cast<std::uint64_t>(ps.digest_bytes[i * 8 + b]) << (8 * b);
          d->digest_storage[i] = w;
        }
        v.digests_ = d->digest_storage;
      }
      v.live_ = live_gen_;
      d->pages = v;
    }
    decoded_ = std::move(d);
  }
  return *decoded_;
}

}  // namespace prebake::criu
