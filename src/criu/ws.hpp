// REAP-style working-set capture (DESIGN.md §6j).
//
// A ws_recording restore arms the kernel's per-page fault capture on the
// restored pid and hands back a WsRecorder; after the first invocation
// completes, finish_ws_recording() turns the captured per-VMA bitmaps into a
// WorkingSetImage — RLE runs in *image* VMA coordinates, so any later
// restore can translate them through its own vma id map — ready to encode as
// ws-1.img next to the snapshot.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "criu/error.hpp"
#include "criu/image.hpp"
#include "os/kernel.hpp"

namespace prebake::criu {

// Live recording handle: which pid's faults are being captured and how the
// restored VMA ids map back to the image's. Returned (shared) in
// RestoreResult so the platform can close the recording after the first
// invocation even though the Restorer is long gone.
struct WsRecorder {
  os::Pid pid = os::kNoPid;
  // image vma id -> restored vma id. The kernel's capture is keyed by the
  // restored process's ids; the persisted image must be keyed by the
  // snapshot's, so the translation happens exactly once, at finish time.
  std::map<os::VmaId, os::VmaId> image_to_new;
};

// Stop the capture and translate it into a WorkingSetImage. Recorded VMAs
// with no image counterpart (regions mapped after restore) are dropped —
// they cannot be prefetched from the snapshot. Deterministic: runs are
// emitted in (image vma id, first_page) order.
WorkingSetImage finish_ws_recording(os::Kernel& kernel, const WsRecorder& rec);

// Attempt to load ws-1.img from a directory. A missing / truncated / corrupt
// working-set image is not a restore failure — the caller downgrades to
// pure-lazy — so the outcome is a value, not an exception: `ws` empty means
// fall back, with the typed reason and human detail alongside.
struct WsLoad {
  std::optional<WorkingSetImage> ws;
  RestoreErrorKind fallback_kind = RestoreErrorKind::kMissingImage;
  std::string detail;
};
WsLoad load_working_set(const ImageDir& images);

// Expand the runs into per-VMA bitmaps keyed by image vma id, validated
// against the image's VMA table. Throws RestoreError{kCorruptImage} on an
// unknown vma or a run past the end of its VMA (the caller catches and falls
// back, same as a bad decode).
std::map<os::VmaId, os::PageBitmap> ws_bitmaps(
    const WorkingSetImage& ws, const std::vector<VmaEntry>& vmas);

}  // namespace prebake::criu
