#include "criu/page_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace prebake::criu {

std::uint64_t PageStore::missing_unique_pages(
    std::span<const std::uint64_t> digests) const {
  std::unordered_set<std::uint64_t> missing;
  for (const std::uint64_t d : digests)
    if (!pages_.contains(d)) missing.insert(d);
  return missing.size();
}

std::uint64_t PageStore::insert(std::span<const std::uint64_t> digests) {
  ++tick_;
  std::uint64_t fresh = 0;
  for (const std::uint64_t d : digests) {
    auto [it, inserted] = pages_.try_emplace(d);
    it->second.tick = tick_;
    if (inserted) ++fresh;
  }
  evict_to_fit();
  return fresh;
}

void PageStore::pin(std::span<const std::uint64_t> digests) {
  ++tick_;
  for (const std::uint64_t d : digests) {
    auto [it, inserted] = pages_.try_emplace(d);
    ++it->second.refcount;
    it->second.tick = tick_;
  }
}

void PageStore::unpin(std::span<const std::uint64_t> digests) {
  for (const std::uint64_t d : digests) {
    const auto it = pages_.find(d);
    if (it == pages_.end() || it->second.refcount == 0)
      throw std::logic_error{"PageStore::unpin: refcount underflow"};
    --it->second.refcount;
  }
  evict_to_fit();
}

std::uint32_t PageStore::refcount(std::uint64_t digest) const {
  const auto it = pages_.find(digest);
  return it == pages_.end() ? 0 : it->second.refcount;
}

void PageStore::set_capacity(std::uint64_t bytes) {
  capacity_ = bytes;
  evict_to_fit();
}

void PageStore::evict_to_fit() {
  if (capacity_ == 0 || stored_bytes() <= capacity_) return;
  // Unpinned pages only, least recently inserted/pinned first. Collect and
  // sort (digest breaks tick ties) so eviction order is deterministic.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> victims;  // (tick, digest)
  for (const auto& [digest, rec] : pages_)
    if (rec.refcount == 0) victims.emplace_back(rec.tick, digest);
  std::sort(victims.begin(), victims.end());
  for (const auto& [tick, digest] : victims) {
    if (stored_bytes() <= capacity_) break;
    pages_.erase(digest);
    ++stats_.evicted_pages;
  }
}

const PageStore::TemplateInfo* PageStore::find_template(
    const std::string& key) const {
  const auto it = templates_.find(key);
  return it == templates_.end() ? nullptr : &it->second;
}

void PageStore::register_template(const std::string& key, TemplateInfo info) {
  if (templates_.contains(key))
    throw std::logic_error{"PageStore::register_template: duplicate key " + key};
  pin(info.digests);
  ++stats_.templates_materialized;
  templates_.emplace(key, std::move(info));
}

os::Pid PageStore::drop_template(const std::string& key) {
  const auto it = templates_.find(key);
  if (it == templates_.end()) return os::kNoPid;
  const os::Pid pid = it->second.pid;
  // Move the digests out before erasing; unpin may evict.
  const std::vector<std::uint64_t> digests = std::move(it->second.digests);
  templates_.erase(it);
  unpin(digests);
  return pid;
}

std::vector<os::Pid> PageStore::drop_all_templates() {
  std::vector<os::Pid> pids;
  while (!templates_.empty()) {
    const os::Pid pid = drop_template(templates_.begin()->first);
    if (pid != os::kNoPid) pids.push_back(pid);
  }
  return pids;
}

void PageStore::clear_pages() {
  if (!templates_.empty())
    throw std::logic_error{"PageStore::clear_pages: templates still registered"};
  pages_.clear();
}

}  // namespace prebake::criu
