// The checkpoint (dump) side of the CRIU-model engine.
//
// Follows the algorithm described in Section 3.2 of the paper: freeze every
// thread of the target, walk /proc/$pid/pagemap to find resident memory,
// inject the parasite blob with ptrace, stream page contents through a pipe
// into image files, then cure the parasite and either resume or kill the
// target.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "criu/image.hpp"
#include "os/kernel.hpp"

namespace prebake::criu {

struct DumpOptions {
  // Resume the target after the dump instead of killing it (CRIU -R).
  bool leave_running = false;
  // kDigest stores 8 bytes/page in host memory while accounting the full
  // payload size; kFull stores the raw bytes (tests use this to prove the
  // byte-identical round trip).
  PayloadMode payload_mode = PayloadMode::kDigest;
  // Incremental dump: only pages dirtied (or newly mapped) since `parent`
  // was taken are dumped. Used by the pre-dump ablation.
  const ImageDir* parent = nullptr;
  // Nested-parent coverage (CRIU --prev-images-dir chains): a pre-dump
  // chain's links each hold only their round's dirty delta, so skipping
  // against the newest link alone would re-dump everything older links
  // already cover. When set, coverage is the union over every link (oldest
  // first); `parent` may be combined or omitted.
  std::span<const ImageDir* const> parent_chain{};
  // Pre-dump: like a dump but leaves the target running and resets the
  // soft-dirty bits so the next dump is incremental.
  bool pre_dump = false;
  std::uint64_t parasite_blob_bytes = 64 * 1024;
  // Capabilities of the criu process. Unprivileged dump works with
  // CAP_CHECKPOINT_RESTORE only (Linux 5.9+, [11] in the paper).
  os::Cap criu_caps = os::Cap::kSysPtrace | os::Cap::kSysAdmin;
  // If non-empty, image files are also registered in the simulated
  // filesystem under this prefix and write bandwidth is charged.
  std::string fs_prefix;
  // Recorded into stats.img (how many warm-up requests preceded the dump).
  std::uint32_t warmup_requests = 0;
};

struct DumpResult {
  ImageDir images;
  StatsEntry stats;
  sim::Duration duration;
};

class Dumper {
 public:
  explicit Dumper(os::Kernel& kernel) : kernel_{&kernel} {}

  DumpResult dump(os::Pid pid, const DumpOptions& opts = {});

 private:
  os::Kernel* kernel_;
};

}  // namespace prebake::criu
