// Typed restore failures.
//
// The resilient restore path needs to tell *why* a restore failed: a
// truncated persist heals by re-baking the snapshot, a transient device
// error heals by retrying, a permission error heals by neither. RestoreError
// derives from std::runtime_error so pre-existing callers (and tests) that
// catch the base type keep working; new callers switch on kind().
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace prebake::criu {

enum class RestoreErrorKind : std::uint8_t {
  kMissingImage,    // a required image file is absent from the directory
  kCorruptImage,    // CRC / digest mismatch in an image record
  kTruncatedImage,  // on-disk copy shorter than the record's nominal size
  kIoError,         // storage read failed (transient device error)
  kFetchFailed,     // remote registry fetch exhausted its retry budget
  kUnsupported,     // image content the engine cannot rebuild (digest-mode
                    // buffer memory, thread-count mismatch, unknown vma)
  kPermission,      // missing capability (original-pid restore)
  kDeadline,        // restore attempts exceeded the caller's deadline
  kConfig,          // contradictory RestoreOptions (caller bug, never
                    // retryable): e.g. a non-eager paging mode combined
                    // with a page-store template key
};

constexpr const char* restore_error_name(RestoreErrorKind kind) {
  switch (kind) {
    case RestoreErrorKind::kMissingImage: return "missing-image";
    case RestoreErrorKind::kCorruptImage: return "corrupt-image";
    case RestoreErrorKind::kTruncatedImage: return "truncated-image";
    case RestoreErrorKind::kIoError: return "io-error";
    case RestoreErrorKind::kFetchFailed: return "fetch-failed";
    case RestoreErrorKind::kUnsupported: return "unsupported";
    case RestoreErrorKind::kPermission: return "permission";
    case RestoreErrorKind::kDeadline: return "deadline";
    case RestoreErrorKind::kConfig: return "config";
  }
  return "unknown";
}

class RestoreError : public std::runtime_error {
 public:
  RestoreError(RestoreErrorKind kind, const std::string& what)
      : std::runtime_error{what}, kind_{kind} {}
  RestoreError(RestoreErrorKind kind, const std::string& what, int chain_link)
      : std::runtime_error{what}, kind_{kind}, chain_link_{chain_link} {}

  RestoreErrorKind kind() const { return kind_; }
  // Depth of the pre-dump chain link the failure was detected in: 0 is the
  // newest link, increasing toward the base image. -1 when the failure is
  // not attributable to a specific link (single-image restores, fetch-level
  // faults).
  int chain_link() const { return chain_link_; }
  // Transient faults are worth retrying against the same snapshot: device
  // errors, aborted transfers, and CRCs tripped by a corrupted *copy* (the
  // registry's master bytes are fine; a re-read can succeed). The rest fail
  // every attempt identically (bad image on disk, bad caller).
  bool transient() const {
    return kind_ == RestoreErrorKind::kIoError ||
           kind_ == RestoreErrorKind::kFetchFailed ||
           kind_ == RestoreErrorKind::kCorruptImage;
  }

 private:
  RestoreErrorKind kind_;
  int chain_link_ = -1;
};

}  // namespace prebake::criu
