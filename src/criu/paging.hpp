#pragma once

// Unified paging policy for prebaked restores. Replaces the ad-hoc
// RestoreOptions.lazy_pages bool + lazy_working_set fraction pair with one
// struct naming the restore's paging mode and its per-mode knobs:
//
//   kEager       — every page populated during restore (the paper's default).
//   kLazy        — an eager prefix per pagemap run (lazy_fraction), the rest
//                  served on first touch by the userfaultfd-style
//                  LazyPagesServer.
//   kWorkingSet  — REAP-style (Ustiugov et al.): the snapshot's recorded
//                  first-invocation working set (ws-1.img) is eagerly
//                  bulk-mapped, only the cold tail is lazy-served. With
//                  ws_record set, the restore instead *records* that working
//                  set: it starts pure-lazy with kernel fault capture armed,
//                  and the platform persists the touched-page set after the
//                  first invocation completes.

#include <cstdint>

namespace prebake::criu {

enum class PagingMode : std::uint8_t {
  kEager = 0,
  kLazy = 1,
  kWorkingSet = 2,
};

inline const char* paging_mode_name(PagingMode m) {
  switch (m) {
    case PagingMode::kEager: return "eager";
    case PagingMode::kLazy: return "lazy";
    case PagingMode::kWorkingSet: return "working_set";
  }
  return "unknown";
}

struct PagingPolicy {
  PagingMode mode = PagingMode::kEager;

  // kLazy: fraction of each pagemap run populated eagerly up front
  // (clamped to [0,1]; 0 defers everything, 1 degenerates to eager).
  double lazy_fraction = 0.25;

  // kWorkingSet: record the working set on this restore instead of
  // prefetching one. Ignored under other modes.
  bool ws_record = false;

  static PagingPolicy eager() { return {}; }

  static PagingPolicy lazy(double fraction = 0.25) {
    PagingPolicy p;
    p.mode = PagingMode::kLazy;
    p.lazy_fraction = fraction;
    return p;
  }

  // First restore of a snapshot: run pure-lazy with fault recording armed.
  static PagingPolicy ws_recording() {
    PagingPolicy p;
    p.mode = PagingMode::kWorkingSet;
    p.ws_record = true;
    return p;
  }

  // Later restores: eagerly prefetch the recorded working set, lazy tail.
  static PagingPolicy ws_prefetch() {
    PagingPolicy p;
    p.mode = PagingMode::kWorkingSet;
    return p;
  }

  friend bool operator==(const PagingPolicy& a, const PagingPolicy& b) {
    return a.mode == b.mode && a.lazy_fraction == b.lazy_fraction &&
           a.ws_record == b.ws_record;
  }
};

}  // namespace prebake::criu
