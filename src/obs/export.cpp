#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace prebake::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// Microseconds with 3 decimals: keeps full nanosecond precision through the
// JSON round trip while staying in the unit about:tracing expects.
std::string micros(std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

std::string dec(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

// ---- minimal JSON reader (exactly the subset to_chrome_json emits) ----

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
};

struct JsonReader {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("parse_chrome_json: " + std::string{what} +
                             " at offset " + std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\n' ||
                                 text[pos] == '\t' || text[pos] == '\r'))
      ++pos;
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::kString;
      v.str = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      if (text.compare(pos, 4, "null") != 0) fail("bad literal");
      pos += 4;
      return {};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos;
      return v;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.obj.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos;
      return v;
    }
    while (true) {
      v.arr.push_back(parse_value());
      const char c = peek();
      ++pos;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      c = text[pos++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail("bad \\u escape");
          const unsigned code =
              std::stoul(text.substr(pos, 4), nullptr, 16);
          pos += 4;
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::kBool;
    if (text.compare(pos, 4, "true") == 0) {
      v.boolean = true;
      pos += 4;
    } else if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E'))
      ++pos;
    if (pos == start) fail("expected number");
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.number = std::stod(text.substr(start, pos - start));
    return v;
  }
};

std::int64_t micros_to_ns(double us) {
  return static_cast<std::int64_t>(std::llround(us * 1e3));
}

}  // namespace

std::string to_chrome_json(const TraceReport& report) {
  std::string out;
  out.reserve(256 + report.spans.size() * 160);
  out += "{\n\"displayTimeUnit\": \"ms\",\n";

  // Histogram summaries ride in otherData: about:tracing ignores it and the
  // round-trip parser skips it, but humans and jq can read the percentiles.
  out += "\"otherData\": {\"tool\": \"prebake-obs\", \"spans\": ";
  out += dec(report.spans.size());
  out += ", \"histograms\": [";
  {
    bool first = true;
    for (const auto& entry : report.metrics.histograms()) {
      if (!first) out += ", ";
      first = false;
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "{\"count\": %" PRIu64
                    ", \"mean\": %.6g, \"p50\": %.6g, \"p95\": %.6g, "
                    "\"p99\": %.6g, \"max\": %.6g, \"name\": ",
                    entry.hist.count(), entry.hist.mean_ms(),
                    entry.hist.percentile(0.50), entry.hist.percentile(0.95),
                    entry.hist.percentile(0.99), entry.hist.max_ms());
      out += buf;
      append_escaped(out, entry.name);
      out += "}";
    }
  }
  out += "]},\n\"traceEvents\": [\n";

  bool first = true;
  auto event_sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  event_sep();
  out +=
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"prebake-sim\"}}";
  std::set<std::uint32_t> tracks;
  for (const SpanRecord& s : report.spans) tracks.insert(s.track);
  for (std::uint32_t track : tracks) {
    event_sep();
    out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
    out += dec(track);
    out += ", \"args\": {\"name\": \"track-";
    out += dec(track);
    out += "\"}}";
  }

  std::int64_t last_ns = 0;
  for (const SpanRecord& s : report.spans) {
    last_ns = std::max(last_ns, s.end_ns);
    event_sep();
    out += "{\"name\": ";
    append_escaped(out, s.name);
    out += ", \"cat\": ";
    append_escaped(out, s.category);
    out += ", \"ph\": \"X\", \"ts\": ";
    out += micros(s.start_ns);
    out += ", \"dur\": ";
    out += micros(std::max<std::int64_t>(0, s.end_ns - s.start_ns));
    out += ", \"pid\": 1, \"tid\": ";
    out += dec(s.track);
    // Ids as decimal strings: JSON numbers lose precision past 2^53 and
    // span ids are full 64-bit values. "id"/"parent"/"seq" are reserved
    // arg keys — attr keys must not collide with them.
    out += ", \"args\": {\"id\": \"";
    out += dec(s.id);
    out += "\", \"parent\": \"";
    out += dec(s.parent);
    out += "\", \"seq\": ";
    out += dec(s.seq);
    for (const auto& [key, value] : s.attrs) {
      out += ", ";
      append_escaped(out, key);
      out += ": ";
      append_escaped(out, value);
    }
    out += "}}";
  }

  for (const auto& entry : report.metrics.counters()) {
    event_sep();
    out += "{\"name\": ";
    append_escaped(out, entry.name);
    out += ", \"ph\": \"C\", \"ts\": ";
    out += micros(last_ns);
    out += ", \"pid\": 1, \"tid\": 0, \"args\": {\"value\": ";
    out += dec(entry.value);
    out += "}}";
  }

  out += "\n]\n}\n";
  return out;
}

std::string to_text_tree(const TraceReport& report) {
  std::string out;
  out += "trace: " + dec(report.spans.size()) + " spans\n";

  // Children keyed by parent id, preserving the report's canonical
  // (start, track, seq) order within each bucket.
  std::unordered_map<SpanId, std::vector<std::size_t>> children;
  std::set<SpanId> ids;
  for (const SpanRecord& s : report.spans) ids.insert(s.id);
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < report.spans.size(); ++i) {
    const SpanRecord& s = report.spans[i];
    if (s.parent != 0 && ids.count(s.parent) != 0)
      children[s.parent].push_back(i);
    else
      roots.push_back(i);
  }

  auto emit = [&](auto&& self, std::size_t index, int depth) -> void {
    const SpanRecord& s = report.spans[index];
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += s.name;
    out += " [" + s.category + "]";
    char buf[80];
    std::snprintf(buf, sizeof buf, " @%.3fms +%.3fms",
                  static_cast<double>(s.start_ns) / 1e6,
                  static_cast<double>(s.end_ns - s.start_ns) / 1e6);
    out += buf;
    for (const auto& [key, value] : s.attrs) out += " " + key + "=" + value;
    out.push_back('\n');
    auto it = children.find(s.id);
    if (it != children.end())
      for (std::size_t child : it->second) self(self, child, depth + 1);
  };
  for (std::size_t root : roots) emit(emit, root, 0);

  const auto counters = report.metrics.counters();
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& entry : counters)
      out += "  " + entry.name + " = " + dec(entry.value) + "\n";
  }
  const auto hists = report.metrics.histograms();
  if (!hists.empty()) {
    out += "histograms:\n";
    for (const auto& entry : hists) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "  %s  n=%" PRIu64
                    " mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
                    entry.name.c_str(), entry.hist.count(),
                    entry.hist.mean_ms(), entry.hist.percentile(0.50),
                    entry.hist.percentile(0.95), entry.hist.percentile(0.99),
                    entry.hist.max_ms());
      out += buf;
    }
  }
  return out;
}

TraceReport parse_chrome_json(const std::string& json) {
  JsonReader reader{json};
  const JsonValue root = reader.parse_value();
  if (root.kind != JsonValue::kObject)
    throw std::runtime_error("parse_chrome_json: top level is not an object");
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::kArray)
    throw std::runtime_error("parse_chrome_json: missing traceEvents array");

  TraceReport report;
  for (const JsonValue& ev : events->arr) {
    if (ev.kind != JsonValue::kObject)
      throw std::runtime_error("parse_chrome_json: event is not an object");
    const JsonValue* ph = ev.find("ph");
    const JsonValue* name = ev.find("name");
    if (ph == nullptr || ph->kind != JsonValue::kString || name == nullptr)
      throw std::runtime_error("parse_chrome_json: event missing ph/name");
    const JsonValue* args = ev.find("args");
    if (ph->str == "C") {
      const JsonValue* value =
          args != nullptr ? args->find("value") : nullptr;
      if (value == nullptr || value->kind != JsonValue::kNumber)
        throw std::runtime_error("parse_chrome_json: counter missing value");
      report.metrics.add(name->str,
                         static_cast<std::uint64_t>(value->number));
      continue;
    }
    if (ph->str != "X") continue;  // metadata etc.
    const JsonValue* cat = ev.find("cat");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* dur = ev.find("dur");
    const JsonValue* tid = ev.find("tid");
    if (cat == nullptr || ts == nullptr || dur == nullptr || tid == nullptr ||
        args == nullptr)
      throw std::runtime_error("parse_chrome_json: span event incomplete");
    SpanRecord rec;
    rec.name = name->str;
    rec.category = cat->str;
    rec.start_ns = micros_to_ns(ts->number);
    rec.end_ns = rec.start_ns + micros_to_ns(dur->number);
    rec.track = static_cast<std::uint32_t>(tid->number);
    for (const auto& [key, value] : args->obj) {
      if (key == "id") {
        rec.id = std::stoull(value.str);
      } else if (key == "parent") {
        rec.parent = std::stoull(value.str);
      } else if (key == "seq") {
        rec.seq = static_cast<std::uint32_t>(value.number);
      } else if (value.kind == JsonValue::kString) {
        rec.attrs.emplace_back(key, value.str);
      }
    }
    report.spans.push_back(std::move(rec));
  }
  return report;
}

}  // namespace prebake::obs
