// Log-bucket histogram shared by the metrics registry and the platform's
// aggregated request log.
//
// This is the bucketing that used to live on faas::LatencyHistogram: log-
// spaced buckets covering 1 us .. ~10^4 s of milliseconds, answering
// percentile queries with bounded error (~5.9% per bucket step at 40
// buckets/decade) in O(1) memory. It moved here so obs::Registry and
// faas::RequestAggregate share one implementation; faas keeps a
// `LatencyHistogram` alias for source compatibility.
#pragma once

#include <array>
#include <cstdint>

namespace prebake::obs {

class LogHistogram {
 public:
  // Log-spaced buckets covering 1 us .. ~10^4 s of milliseconds.
  static constexpr int kBucketsPerDecade = 40;
  static constexpr double kMinMs = 1e-3;
  static constexpr int kDecades = 10;
  static constexpr int kBuckets = kBucketsPerDecade * kDecades + 2;

  void record(double ms);

  std::uint64_t count() const { return count_; }
  double sum_ms() const { return sum_ms_; }
  double mean_ms() const { return count_ == 0 ? 0.0 : sum_ms_ / count_; }
  double min_ms() const { return count_ == 0 ? 0.0 : min_ms_; }
  double max_ms() const { return count_ == 0 ? 0.0 : max_ms_; }

  // Quantile `p` in [0, 1] from the histogram (bucket lower edge; exact
  // recorded min/max at the extremes). 0 when empty.
  double percentile(double p) const;

  // Fold another histogram into this one. Bucket counts add exactly;
  // min/max/sum/count merge so the result equals recording both sample
  // streams into one histogram (the percentile clamp uses the combined
  // extremes). Used to combine per-shard registries deterministically.
  void merge(const LogHistogram& other);

 private:
  static int bucket_of(double ms);
  static double bucket_floor_ms(int bucket);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ms_ = 0.0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
};

}  // namespace prebake::obs
