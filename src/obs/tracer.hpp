// Deterministic sim-clock tracing.
//
// A Tracer hangs off each os::Kernel (like faults::Injector) and records
// RAII Spans — name, category, sim-clock start/end, parent id, string
// key/value attrs — into a per-kernel buffer. Because every kernel (and
// therefore every tracer) is driven by exactly one thread, the buffer needs
// no locking; parallel scenario runners give each shard's testbed its own
// track id and merge the per-track buffers afterwards, sorted by
// (start, track, seq). Both the track layout and the per-track sequence
// numbers are pure functions of the scenario config, never of thread
// scheduling, so the merged trace is bit-identical at any thread count.
//
// Determinism contract:
//   - span ids are (track << 32) | seq with seq assigned in program order
//     on the owning kernel's single thread;
//   - timestamps come from the sim clock only (never wall clock), and
//     recording a span never advances simulated time or touches the RNG, so
//     enabling tracing cannot change any simulated result;
//   - the disabled path is the default and costs one branch: span() returns
//     an inert handle, no allocation, no buffer growth — existing benches
//     stay byte-identical (asserted by the TraceNull tests).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace prebake::obs {

// Span ids are globally unique across a merged multi-track trace:
// high 32 bits = track, low 32 bits = 1-based sequence within the track.
using SpanId = std::uint64_t;

constexpr SpanId make_span_id(std::uint32_t track, std::uint32_t seq) {
  return (static_cast<SpanId>(track) << 32) | seq;
}
constexpr std::uint32_t span_track(SpanId id) {
  return static_cast<std::uint32_t>(id >> 32);
}
constexpr std::uint32_t span_seq(SpanId id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu);
}

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = top-level
  std::uint32_t track = 0;
  std::uint32_t seq = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = -1;  // -1 while the span is still open
  std::string name;
  std::string category;
  std::vector<std::pair<std::string, std::string>> attrs;

  sim::Duration duration() const {
    return sim::Duration::nanos((end_ns < 0 ? start_ns : end_ns) - start_ns);
  }
};

// Canonical merged order: (start, track, seq). Stable across thread counts
// because all three keys are sim-deterministic.
void sort_spans(std::vector<SpanRecord>& spans);

class Tracer;

// Move-only RAII handle over one recorded span. A default-constructed (or
// disabled-tracer) Span is inert: attr()/end() are no-ops and nothing was
// allocated to create it.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept
      : tracer_{other.tracer_}, index_{other.index_}, epoch_{other.epoch_} {
    other.tracer_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = other.tracer_;
      index_ = other.index_;
      epoch_ = other.epoch_;
      other.tracer_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  bool active() const { return tracer_ != nullptr; }
  // 0 for an inert span — callers can store the id unconditionally.
  SpanId id() const;

  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, const char* value) {
    attr(key, std::string_view{value});
  }
  void attr(std::string_view key, std::int64_t value);
  void attr(std::string_view key, std::uint64_t value);
  void attr(std::string_view key, int value) {
    attr(key, static_cast<std::int64_t>(value));
  }
  void attr(std::string_view key, double value);

  // Close the span at sim-now (idempotent; also run by the destructor).
  void end();
  // Close at an explicit sim time (for spans measured inline and rewound).
  void end_at(sim::TimePoint when);

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::uint32_t index, std::uint32_t epoch)
      : tracer_{tracer}, index_{index}, epoch_{epoch} {}
  // The record buffer this handle indexes into; a take_records() call bumps
  // the tracer's epoch, turning any handle from before the drain inert.
  bool live() const;
  Tracer* tracer_ = nullptr;
  std::uint32_t index_ = 0;
  std::uint32_t epoch_ = 0;
};

class Tracer {
 public:
  explicit Tracer(sim::Simulation& sim) : sim_{&sim} {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  // Start recording on `track`; top-level spans parent to `root_parent`
  // (an id from another track, e.g. the scenario root) or 0.
  void enable(std::uint32_t track = 0, SpanId root_parent = 0);
  void disable() { enabled_ = false; }

  // Open a span starting now. Inert handle when disabled.
  Span span(std::string_view name, std::string_view category);
  // Open a span with an explicit (possibly retroactive) start time, e.g. a
  // queue-wait measured when the request is finally served.
  Span span_at(std::string_view name, std::string_view category,
               sim::TimePoint start);
  // Zero-duration marker (quarantine enter/lift, cache hit/miss...). The
  // returned handle is already closed; use it to attach attrs.
  Span instant(std::string_view name, std::string_view category);

  // Innermost open span id (root_parent when none). What a new span or
  // instant would parent to.
  SpanId current() const;

  std::uint32_t track() const { return track_; }
  // Number of span records allocated so far (0 while disabled — the
  // TraceNull tests assert this never moves on the disabled path).
  std::uint64_t total_spans() const { return next_seq_ - 1; }

  const std::vector<SpanRecord>& records() const { return records_; }
  // Drain the buffer (closing any still-open spans at sim-now) so shard
  // runners can harvest per-testbed traces before the testbed dies. Any Span
  // handle still alive afterwards becomes inert: its end()/attr() no-op.
  std::vector<SpanRecord> take_records();

  // Named counters/histograms recorded alongside the spans. count() and
  // measure() are gated on enabled() like span(); metrics() itself is
  // always live for snapshots.
  void count(std::string_view name, std::uint64_t delta = 1) {
    if (enabled_) metrics_.add(name, delta);
  }
  void measure(std::string_view name, double value) {
    if (enabled_) metrics_.record(name, value);
  }
  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }

 private:
  friend class Span;
  std::int64_t now_ns() const { return sim_->now().nanos_since_origin(); }
  Span open_span(std::string_view name, std::string_view category,
                 std::int64_t start_ns, bool push_open);
  void end_span(std::uint32_t index, std::int64_t end_ns);

  sim::Simulation* sim_;
  bool enabled_ = false;
  std::uint32_t track_ = 0;
  std::uint32_t next_seq_ = 1;
  SpanId root_parent_ = 0;
  std::vector<SpanRecord> records_;
  std::vector<std::uint32_t> open_;  // stack of indices into records_
  std::uint32_t epoch_ = 0;          // bumped by take_records()
  Registry metrics_;
};

}  // namespace prebake::obs
