// Named-metric registry: counters and log-bucket histograms.
//
// A Registry is a flat namespace of monotonically increasing counters and
// LogHistogram distributions, keyed by dotted names ("faas.cache.hit",
// "criu.restore_ms"). It is snapshot-able mid-run — counters() and
// histograms() return name-sorted copies without disturbing recording — and
// mergeable, so per-shard registries from a parallel scenario fold into one
// deterministic aggregate regardless of thread count (std::map keeps the
// iteration order a pure function of the recorded names).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace prebake::obs {

class Registry {
 public:
  // Counters.
  void add(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t counter(std::string_view name) const;

  // Histograms (milliseconds; any non-negative double works — byte counts
  // recorded as doubles are fine, the bucketing is unit-agnostic).
  void record(std::string_view name, double value);
  const LogHistogram* histogram(std::string_view name) const;

  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    LogHistogram hist;
  };

  // Name-sorted snapshots; safe to call mid-run.
  std::vector<CounterEntry> counters() const;
  std::vector<HistogramEntry> histograms() const;

  // Fold another registry into this one (counters add, histograms merge).
  void merge_from(const Registry& other);

  bool empty() const { return counters_.empty() && hists_.empty(); }
  void clear();

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, LogHistogram, std::less<>> hists_;
};

}  // namespace prebake::obs
