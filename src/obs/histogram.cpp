#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace prebake::obs {

int LogHistogram::bucket_of(double ms) {
  if (!(ms > kMinMs)) return 0;
  const int b = 1 + static_cast<int>(std::floor(std::log10(ms / kMinMs) *
                                                kBucketsPerDecade));
  return std::min(b, kBuckets - 1);
}

double LogHistogram::bucket_floor_ms(int bucket) {
  if (bucket <= 0) return 0.0;
  return kMinMs * std::pow(10.0, static_cast<double>(bucket - 1) /
                                     kBucketsPerDecade);
}

void LogHistogram::record(double ms) {
  if (ms < 0) ms = 0;
  ++buckets_[static_cast<std::size_t>(bucket_of(ms))];
  if (count_ == 0) {
    min_ms_ = max_ms_ = ms;
  } else {
    min_ms_ = std::min(min_ms_, ms);
    max_ms_ = std::max(max_ms_, ms);
  }
  ++count_;
  sum_ms_ += ms;
}

double LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the p-th sample (nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      // The last rank is the max sample exactly; the overflow bucket's
      // floor would underestimate anything recorded past the top decade.
      if (rank == count_ || b == kBuckets - 1) return max_ms_;
      return std::clamp(bucket_floor_ms(b), min_ms_, max_ms_);
    }
  }
  return max_ms_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ms_ = other.min_ms_;
    max_ms_ = other.max_ms_;
  } else {
    min_ms_ = std::min(min_ms_, other.min_ms_);
    max_ms_ = std::max(max_ms_, other.max_ms_);
  }
  for (int b = 0; b < kBuckets; ++b)
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  count_ += other.count_;
  sum_ms_ += other.sum_ms_;
}

}  // namespace prebake::obs
