#include "obs/tracer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace prebake::obs {

void sort_spans(std::vector<SpanRecord>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.track != b.track) return a.track < b.track;
              return a.seq < b.seq;
            });
}

bool Span::live() const {
  return tracer_ != nullptr && tracer_->epoch_ == epoch_;
}

SpanId Span::id() const { return live() ? tracer_->records_[index_].id : 0; }

void Span::attr(std::string_view key, std::string_view value) {
  if (!live()) return;
  tracer_->records_[index_].attrs.emplace_back(std::string{key},
                                               std::string{value});
}

void Span::attr(std::string_view key, std::int64_t value) {
  if (!live()) return;
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  attr(key, std::string_view{buf});
}

void Span::attr(std::string_view key, std::uint64_t value) {
  if (!live()) return;
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  attr(key, std::string_view{buf});
}

void Span::attr(std::string_view key, double value) {
  if (!live()) return;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  attr(key, std::string_view{buf});
}

void Span::end() {
  if (live()) tracer_->end_span(index_, tracer_->now_ns());
  tracer_ = nullptr;
}

void Span::end_at(sim::TimePoint when) {
  if (live()) tracer_->end_span(index_, when.nanos_since_origin());
  tracer_ = nullptr;
}

void Tracer::enable(std::uint32_t track, SpanId root_parent) {
  enabled_ = true;
  track_ = track;
  root_parent_ = root_parent;
}

SpanId Tracer::current() const {
  return open_.empty() ? root_parent_ : records_[open_.back()].id;
}

Span Tracer::open_span(std::string_view name, std::string_view category,
                       std::int64_t start_ns, bool push_open) {
  SpanRecord rec;
  rec.track = track_;
  rec.seq = next_seq_++;
  rec.id = make_span_id(rec.track, rec.seq);
  rec.parent = current();
  rec.start_ns = start_ns;
  rec.name = name;
  rec.category = category;
  const auto index = static_cast<std::uint32_t>(records_.size());
  records_.push_back(std::move(rec));
  if (push_open) open_.push_back(index);
  return Span{this, index, epoch_};
}

Span Tracer::span(std::string_view name, std::string_view category) {
  if (!enabled_) return Span{};
  return open_span(name, category, now_ns(), /*push_open=*/true);
}

Span Tracer::span_at(std::string_view name, std::string_view category,
                     sim::TimePoint start) {
  if (!enabled_) return Span{};
  return open_span(name, category, start.nanos_since_origin(),
                   /*push_open=*/true);
}

Span Tracer::instant(std::string_view name, std::string_view category) {
  if (!enabled_) return Span{};
  Span s = open_span(name, category, now_ns(), /*push_open=*/false);
  records_[s.index_].end_ns = records_[s.index_].start_ns;
  return s;
}

void Tracer::end_span(std::uint32_t index, std::int64_t end_ns) {
  SpanRecord& rec = records_[index];
  if (rec.end_ns < 0) rec.end_ns = std::max(end_ns, rec.start_ns);
  // Spans normally close LIFO, but event-driven call sites may not; drop
  // the index wherever it sits so current() never points at a dead span.
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (*it == index) {
      open_.erase(std::next(it).base());
      break;
    }
  }
}

std::vector<SpanRecord> Tracer::take_records() {
  const std::int64_t now = now_ns();
  for (std::uint32_t index : open_) {
    SpanRecord& rec = records_[index];
    if (rec.end_ns < 0) rec.end_ns = std::max(now, rec.start_ns);
  }
  open_.clear();
  ++epoch_;  // invalidate outstanding Span handles; late end()/attr() no-op
  std::vector<SpanRecord> out;
  out.swap(records_);
  return out;
}

}  // namespace prebake::obs
