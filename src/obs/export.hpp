// Trace exporters: Chrome trace_event JSON and a compact text tree.
//
// The JSON form loads directly in about:tracing / Perfetto ("Open trace
// file"): spans become ph:"X" complete events (ts/dur in microseconds with
// nanosecond precision kept in three decimals), tracks become tids, span
// ids/parents ride in args, and registry counters are appended as ph:"C"
// counter events. parse_chrome_json() reads back exactly the subset this
// emitter writes — enough for the exporter round-trip test and for external
// tools that post-process our own traces; it is not a general JSON-trace
// loader.
#pragma once

#include <string>

#include "obs/report.hpp"

namespace prebake::obs {

std::string to_chrome_json(const TraceReport& report);
std::string to_text_tree(const TraceReport& report);

// Inverse of to_chrome_json for our own output (spans + counters; histogram
// summaries in otherData are not reconstructed). Throws std::runtime_error
// on malformed input.
TraceReport parse_chrome_json(const std::string& json);

}  // namespace prebake::obs
