// A harvested trace: merged span list + merged metric registry.
//
// Scenario runners build one TraceReport per run by absorbing each
// testbed's Tracer (per-shard tracks) and finalizing, which sorts spans
// into the canonical (start, track, seq) order. Everything here is plain
// data — copyable, comparable, and independent of the kernels it came from.
#pragma once

#include <vector>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace prebake::obs {

struct TraceReport {
  std::vector<SpanRecord> spans;
  Registry metrics;

  bool empty() const { return spans.empty() && metrics.empty(); }

  // Drain `tracer` into this report (records appended, metrics merged).
  void absorb(Tracer& tracer) {
    std::vector<SpanRecord> recs = tracer.take_records();
    spans.insert(spans.end(), std::make_move_iterator(recs.begin()),
                 std::make_move_iterator(recs.end()));
    metrics.merge_from(tracer.metrics());
  }

  // Sort spans into canonical merged order. Call once after all absorbs.
  void finalize() { sort_spans(spans); }
};

}  // namespace prebake::obs
