#include "obs/registry.hpp"

namespace prebake::obs {

void Registry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string{name}, delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t Registry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::record(std::string_view name, double value) {
  auto it = hists_.find(name);
  if (it == hists_.end())
    it = hists_.emplace(std::string{name}, LogHistogram{}).first;
  it->second.record(value);
}

const LogHistogram* Registry::histogram(std::string_view name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

std::vector<Registry::CounterEntry> Registry::counters() const {
  std::vector<CounterEntry> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) out.push_back({name, value});
  return out;
}

std::vector<Registry::HistogramEntry> Registry::histograms() const {
  std::vector<HistogramEntry> out;
  out.reserve(hists_.size());
  for (const auto& [name, hist] : hists_) out.push_back({name, hist});
  return out;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, value] : other.counters_) add(name, value);
  for (const auto& [name, hist] : other.hists_) {
    auto it = hists_.find(name);
    if (it == hists_.end())
      it = hists_.emplace(name, LogHistogram{}).first;
    it->second.merge(hist);
  }
}

void Registry::clear() {
  counters_.clear();
  hists_.clear();
}

}  // namespace prebake::obs
