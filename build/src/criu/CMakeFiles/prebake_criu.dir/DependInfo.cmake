
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/criu/crc32.cpp" "src/criu/CMakeFiles/prebake_criu.dir/crc32.cpp.o" "gcc" "src/criu/CMakeFiles/prebake_criu.dir/crc32.cpp.o.d"
  "/root/repo/src/criu/dedup.cpp" "src/criu/CMakeFiles/prebake_criu.dir/dedup.cpp.o" "gcc" "src/criu/CMakeFiles/prebake_criu.dir/dedup.cpp.o.d"
  "/root/repo/src/criu/dump.cpp" "src/criu/CMakeFiles/prebake_criu.dir/dump.cpp.o" "gcc" "src/criu/CMakeFiles/prebake_criu.dir/dump.cpp.o.d"
  "/root/repo/src/criu/image.cpp" "src/criu/CMakeFiles/prebake_criu.dir/image.cpp.o" "gcc" "src/criu/CMakeFiles/prebake_criu.dir/image.cpp.o.d"
  "/root/repo/src/criu/restore.cpp" "src/criu/CMakeFiles/prebake_criu.dir/restore.cpp.o" "gcc" "src/criu/CMakeFiles/prebake_criu.dir/restore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/prebake_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prebake_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
