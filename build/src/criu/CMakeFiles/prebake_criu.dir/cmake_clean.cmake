file(REMOVE_RECURSE
  "CMakeFiles/prebake_criu.dir/crc32.cpp.o"
  "CMakeFiles/prebake_criu.dir/crc32.cpp.o.d"
  "CMakeFiles/prebake_criu.dir/dedup.cpp.o"
  "CMakeFiles/prebake_criu.dir/dedup.cpp.o.d"
  "CMakeFiles/prebake_criu.dir/dump.cpp.o"
  "CMakeFiles/prebake_criu.dir/dump.cpp.o.d"
  "CMakeFiles/prebake_criu.dir/image.cpp.o"
  "CMakeFiles/prebake_criu.dir/image.cpp.o.d"
  "CMakeFiles/prebake_criu.dir/restore.cpp.o"
  "CMakeFiles/prebake_criu.dir/restore.cpp.o.d"
  "libprebake_criu.a"
  "libprebake_criu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_criu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
