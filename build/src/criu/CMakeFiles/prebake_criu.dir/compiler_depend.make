# Empty compiler generated dependencies file for prebake_criu.
# This may be replaced when dependencies are built.
