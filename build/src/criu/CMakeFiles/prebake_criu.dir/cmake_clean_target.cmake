file(REMOVE_RECURSE
  "libprebake_criu.a"
)
