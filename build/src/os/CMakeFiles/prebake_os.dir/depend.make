# Empty dependencies file for prebake_os.
# This may be replaced when dependencies are built.
