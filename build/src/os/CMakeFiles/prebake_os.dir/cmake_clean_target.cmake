file(REMOVE_RECURSE
  "libprebake_os.a"
)
