
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/address_space.cpp" "src/os/CMakeFiles/prebake_os.dir/address_space.cpp.o" "gcc" "src/os/CMakeFiles/prebake_os.dir/address_space.cpp.o.d"
  "/root/repo/src/os/container.cpp" "src/os/CMakeFiles/prebake_os.dir/container.cpp.o" "gcc" "src/os/CMakeFiles/prebake_os.dir/container.cpp.o.d"
  "/root/repo/src/os/filesystem.cpp" "src/os/CMakeFiles/prebake_os.dir/filesystem.cpp.o" "gcc" "src/os/CMakeFiles/prebake_os.dir/filesystem.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/os/CMakeFiles/prebake_os.dir/kernel.cpp.o" "gcc" "src/os/CMakeFiles/prebake_os.dir/kernel.cpp.o.d"
  "/root/repo/src/os/page_source.cpp" "src/os/CMakeFiles/prebake_os.dir/page_source.cpp.o" "gcc" "src/os/CMakeFiles/prebake_os.dir/page_source.cpp.o.d"
  "/root/repo/src/os/process.cpp" "src/os/CMakeFiles/prebake_os.dir/process.cpp.o" "gcc" "src/os/CMakeFiles/prebake_os.dir/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/prebake_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
