file(REMOVE_RECURSE
  "CMakeFiles/prebake_os.dir/address_space.cpp.o"
  "CMakeFiles/prebake_os.dir/address_space.cpp.o.d"
  "CMakeFiles/prebake_os.dir/container.cpp.o"
  "CMakeFiles/prebake_os.dir/container.cpp.o.d"
  "CMakeFiles/prebake_os.dir/filesystem.cpp.o"
  "CMakeFiles/prebake_os.dir/filesystem.cpp.o.d"
  "CMakeFiles/prebake_os.dir/kernel.cpp.o"
  "CMakeFiles/prebake_os.dir/kernel.cpp.o.d"
  "CMakeFiles/prebake_os.dir/page_source.cpp.o"
  "CMakeFiles/prebake_os.dir/page_source.cpp.o.d"
  "CMakeFiles/prebake_os.dir/process.cpp.o"
  "CMakeFiles/prebake_os.dir/process.cpp.o.d"
  "libprebake_os.a"
  "libprebake_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
