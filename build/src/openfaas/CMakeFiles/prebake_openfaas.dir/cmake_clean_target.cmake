file(REMOVE_RECURSE
  "libprebake_openfaas.a"
)
