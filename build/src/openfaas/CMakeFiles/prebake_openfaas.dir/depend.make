# Empty dependencies file for prebake_openfaas.
# This may be replaced when dependencies are built.
