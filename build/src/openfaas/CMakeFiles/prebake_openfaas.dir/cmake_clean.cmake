file(REMOVE_RECURSE
  "CMakeFiles/prebake_openfaas.dir/deployment.cpp.o"
  "CMakeFiles/prebake_openfaas.dir/deployment.cpp.o.d"
  "CMakeFiles/prebake_openfaas.dir/image_repository.cpp.o"
  "CMakeFiles/prebake_openfaas.dir/image_repository.cpp.o.d"
  "CMakeFiles/prebake_openfaas.dir/template.cpp.o"
  "CMakeFiles/prebake_openfaas.dir/template.cpp.o.d"
  "libprebake_openfaas.a"
  "libprebake_openfaas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_openfaas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
