# Empty compiler generated dependencies file for prebake_exp.
# This may be replaced when dependencies are built.
