file(REMOVE_RECURSE
  "libprebake_exp.a"
)
