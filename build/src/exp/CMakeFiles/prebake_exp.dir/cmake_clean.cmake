file(REMOVE_RECURSE
  "CMakeFiles/prebake_exp.dir/calibration.cpp.o"
  "CMakeFiles/prebake_exp.dir/calibration.cpp.o.d"
  "CMakeFiles/prebake_exp.dir/cli.cpp.o"
  "CMakeFiles/prebake_exp.dir/cli.cpp.o.d"
  "CMakeFiles/prebake_exp.dir/report.cpp.o"
  "CMakeFiles/prebake_exp.dir/report.cpp.o.d"
  "CMakeFiles/prebake_exp.dir/scenario.cpp.o"
  "CMakeFiles/prebake_exp.dir/scenario.cpp.o.d"
  "libprebake_exp.a"
  "libprebake_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
