file(REMOVE_RECURSE
  "CMakeFiles/prebake_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/prebake_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/prebake_stats.dir/descriptive.cpp.o"
  "CMakeFiles/prebake_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/prebake_stats.dir/ecdf.cpp.o"
  "CMakeFiles/prebake_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/prebake_stats.dir/factorial.cpp.o"
  "CMakeFiles/prebake_stats.dir/factorial.cpp.o.d"
  "CMakeFiles/prebake_stats.dir/mann_whitney.cpp.o"
  "CMakeFiles/prebake_stats.dir/mann_whitney.cpp.o.d"
  "CMakeFiles/prebake_stats.dir/normal.cpp.o"
  "CMakeFiles/prebake_stats.dir/normal.cpp.o.d"
  "CMakeFiles/prebake_stats.dir/shapiro_wilk.cpp.o"
  "CMakeFiles/prebake_stats.dir/shapiro_wilk.cpp.o.d"
  "libprebake_stats.a"
  "libprebake_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
