
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/prebake_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/prebake_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/prebake_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/prebake_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/prebake_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/prebake_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/factorial.cpp" "src/stats/CMakeFiles/prebake_stats.dir/factorial.cpp.o" "gcc" "src/stats/CMakeFiles/prebake_stats.dir/factorial.cpp.o.d"
  "/root/repo/src/stats/mann_whitney.cpp" "src/stats/CMakeFiles/prebake_stats.dir/mann_whitney.cpp.o" "gcc" "src/stats/CMakeFiles/prebake_stats.dir/mann_whitney.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/stats/CMakeFiles/prebake_stats.dir/normal.cpp.o" "gcc" "src/stats/CMakeFiles/prebake_stats.dir/normal.cpp.o.d"
  "/root/repo/src/stats/shapiro_wilk.cpp" "src/stats/CMakeFiles/prebake_stats.dir/shapiro_wilk.cpp.o" "gcc" "src/stats/CMakeFiles/prebake_stats.dir/shapiro_wilk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/prebake_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
