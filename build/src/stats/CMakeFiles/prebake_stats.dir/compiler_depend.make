# Empty compiler generated dependencies file for prebake_stats.
# This may be replaced when dependencies are built.
