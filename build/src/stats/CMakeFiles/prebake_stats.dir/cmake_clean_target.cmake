file(REMOVE_RECURSE
  "libprebake_stats.a"
)
