
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/prebaker.cpp" "src/core/CMakeFiles/prebake_core.dir/prebaker.cpp.o" "gcc" "src/core/CMakeFiles/prebake_core.dir/prebaker.cpp.o.d"
  "/root/repo/src/core/startup.cpp" "src/core/CMakeFiles/prebake_core.dir/startup.cpp.o" "gcc" "src/core/CMakeFiles/prebake_core.dir/startup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/criu/CMakeFiles/prebake_criu.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/prebake_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/prebake_os.dir/DependInfo.cmake"
  "/root/repo/build/src/funcs/CMakeFiles/prebake_funcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prebake_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
