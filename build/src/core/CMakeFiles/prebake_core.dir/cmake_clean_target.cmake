file(REMOVE_RECURSE
  "libprebake_core.a"
)
