file(REMOVE_RECURSE
  "CMakeFiles/prebake_core.dir/prebaker.cpp.o"
  "CMakeFiles/prebake_core.dir/prebaker.cpp.o.d"
  "CMakeFiles/prebake_core.dir/startup.cpp.o"
  "CMakeFiles/prebake_core.dir/startup.cpp.o.d"
  "libprebake_core.a"
  "libprebake_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
