# Empty compiler generated dependencies file for prebake_core.
# This may be replaced when dependencies are built.
