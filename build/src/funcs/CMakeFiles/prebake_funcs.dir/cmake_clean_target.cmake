file(REMOVE_RECURSE
  "libprebake_funcs.a"
)
