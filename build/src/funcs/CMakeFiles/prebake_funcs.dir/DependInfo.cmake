
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/funcs/handlers.cpp" "src/funcs/CMakeFiles/prebake_funcs.dir/handlers.cpp.o" "gcc" "src/funcs/CMakeFiles/prebake_funcs.dir/handlers.cpp.o.d"
  "/root/repo/src/funcs/http_codec.cpp" "src/funcs/CMakeFiles/prebake_funcs.dir/http_codec.cpp.o" "gcc" "src/funcs/CMakeFiles/prebake_funcs.dir/http_codec.cpp.o.d"
  "/root/repo/src/funcs/image.cpp" "src/funcs/CMakeFiles/prebake_funcs.dir/image.cpp.o" "gcc" "src/funcs/CMakeFiles/prebake_funcs.dir/image.cpp.o.d"
  "/root/repo/src/funcs/markdown.cpp" "src/funcs/CMakeFiles/prebake_funcs.dir/markdown.cpp.o" "gcc" "src/funcs/CMakeFiles/prebake_funcs.dir/markdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/prebake_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
