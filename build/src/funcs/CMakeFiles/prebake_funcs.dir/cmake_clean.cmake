file(REMOVE_RECURSE
  "CMakeFiles/prebake_funcs.dir/handlers.cpp.o"
  "CMakeFiles/prebake_funcs.dir/handlers.cpp.o.d"
  "CMakeFiles/prebake_funcs.dir/http_codec.cpp.o"
  "CMakeFiles/prebake_funcs.dir/http_codec.cpp.o.d"
  "CMakeFiles/prebake_funcs.dir/image.cpp.o"
  "CMakeFiles/prebake_funcs.dir/image.cpp.o.d"
  "CMakeFiles/prebake_funcs.dir/markdown.cpp.o"
  "CMakeFiles/prebake_funcs.dir/markdown.cpp.o.d"
  "libprebake_funcs.a"
  "libprebake_funcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_funcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
