# Empty dependencies file for prebake_funcs.
# This may be replaced when dependencies are built.
