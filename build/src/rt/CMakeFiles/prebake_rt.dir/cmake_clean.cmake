file(REMOVE_RECURSE
  "CMakeFiles/prebake_rt.dir/classfile.cpp.o"
  "CMakeFiles/prebake_rt.dir/classfile.cpp.o.d"
  "CMakeFiles/prebake_rt.dir/runtime.cpp.o"
  "CMakeFiles/prebake_rt.dir/runtime.cpp.o.d"
  "libprebake_rt.a"
  "libprebake_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
