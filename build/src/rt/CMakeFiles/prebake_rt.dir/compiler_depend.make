# Empty compiler generated dependencies file for prebake_rt.
# This may be replaced when dependencies are built.
