file(REMOVE_RECURSE
  "libprebake_rt.a"
)
