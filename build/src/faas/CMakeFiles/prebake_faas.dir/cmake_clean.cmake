file(REMOVE_RECURSE
  "CMakeFiles/prebake_faas.dir/builder.cpp.o"
  "CMakeFiles/prebake_faas.dir/builder.cpp.o.d"
  "CMakeFiles/prebake_faas.dir/load_generator.cpp.o"
  "CMakeFiles/prebake_faas.dir/load_generator.cpp.o.d"
  "CMakeFiles/prebake_faas.dir/platform.cpp.o"
  "CMakeFiles/prebake_faas.dir/platform.cpp.o.d"
  "CMakeFiles/prebake_faas.dir/resource_manager.cpp.o"
  "CMakeFiles/prebake_faas.dir/resource_manager.cpp.o.d"
  "CMakeFiles/prebake_faas.dir/trace.cpp.o"
  "CMakeFiles/prebake_faas.dir/trace.cpp.o.d"
  "CMakeFiles/prebake_faas.dir/workflow.cpp.o"
  "CMakeFiles/prebake_faas.dir/workflow.cpp.o.d"
  "libprebake_faas.a"
  "libprebake_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
