file(REMOVE_RECURSE
  "libprebake_faas.a"
)
