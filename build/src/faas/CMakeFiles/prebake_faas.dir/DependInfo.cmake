
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faas/builder.cpp" "src/faas/CMakeFiles/prebake_faas.dir/builder.cpp.o" "gcc" "src/faas/CMakeFiles/prebake_faas.dir/builder.cpp.o.d"
  "/root/repo/src/faas/load_generator.cpp" "src/faas/CMakeFiles/prebake_faas.dir/load_generator.cpp.o" "gcc" "src/faas/CMakeFiles/prebake_faas.dir/load_generator.cpp.o.d"
  "/root/repo/src/faas/platform.cpp" "src/faas/CMakeFiles/prebake_faas.dir/platform.cpp.o" "gcc" "src/faas/CMakeFiles/prebake_faas.dir/platform.cpp.o.d"
  "/root/repo/src/faas/resource_manager.cpp" "src/faas/CMakeFiles/prebake_faas.dir/resource_manager.cpp.o" "gcc" "src/faas/CMakeFiles/prebake_faas.dir/resource_manager.cpp.o.d"
  "/root/repo/src/faas/trace.cpp" "src/faas/CMakeFiles/prebake_faas.dir/trace.cpp.o" "gcc" "src/faas/CMakeFiles/prebake_faas.dir/trace.cpp.o.d"
  "/root/repo/src/faas/workflow.cpp" "src/faas/CMakeFiles/prebake_faas.dir/workflow.cpp.o" "gcc" "src/faas/CMakeFiles/prebake_faas.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/prebake_core.dir/DependInfo.cmake"
  "/root/repo/build/src/criu/CMakeFiles/prebake_criu.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/prebake_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/prebake_os.dir/DependInfo.cmake"
  "/root/repo/build/src/funcs/CMakeFiles/prebake_funcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prebake_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
