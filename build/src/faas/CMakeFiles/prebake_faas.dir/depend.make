# Empty dependencies file for prebake_faas.
# This may be replaced when dependencies are built.
