file(REMOVE_RECURSE
  "libprebake_sim.a"
)
