file(REMOVE_RECURSE
  "CMakeFiles/prebake_sim.dir/rng.cpp.o"
  "CMakeFiles/prebake_sim.dir/rng.cpp.o.d"
  "CMakeFiles/prebake_sim.dir/simulation.cpp.o"
  "CMakeFiles/prebake_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/prebake_sim.dir/time.cpp.o"
  "CMakeFiles/prebake_sim.dir/time.cpp.o.d"
  "libprebake_sim.a"
  "libprebake_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebake_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
