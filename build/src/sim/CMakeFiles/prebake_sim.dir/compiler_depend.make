# Empty compiler generated dependencies file for prebake_sim.
# This may be replaced when dependencies are built.
