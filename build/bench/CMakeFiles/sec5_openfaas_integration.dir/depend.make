# Empty dependencies file for sec5_openfaas_integration.
# This may be replaced when dependencies are built.
