file(REMOVE_RECURSE
  "CMakeFiles/sec5_openfaas_integration.dir/sec5_openfaas_integration.cpp.o"
  "CMakeFiles/sec5_openfaas_integration.dir/sec5_openfaas_integration.cpp.o.d"
  "sec5_openfaas_integration"
  "sec5_openfaas_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_openfaas_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
