file(REMOVE_RECURSE
  "CMakeFiles/ablation_runtimes.dir/ablation_runtimes.cpp.o"
  "CMakeFiles/ablation_runtimes.dir/ablation_runtimes.cpp.o.d"
  "ablation_runtimes"
  "ablation_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
