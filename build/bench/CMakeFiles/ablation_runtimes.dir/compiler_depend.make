# Empty compiler generated dependencies file for ablation_runtimes.
# This may be replaced when dependencies are built.
