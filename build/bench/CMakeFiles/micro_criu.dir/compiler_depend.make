# Empty compiler generated dependencies file for micro_criu.
# This may be replaced when dependencies are built.
