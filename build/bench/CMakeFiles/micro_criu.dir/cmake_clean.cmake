file(REMOVE_RECURSE
  "CMakeFiles/micro_criu.dir/micro_criu.cpp.o"
  "CMakeFiles/micro_criu.dir/micro_criu.cpp.o.d"
  "micro_criu"
  "micro_criu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_criu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
