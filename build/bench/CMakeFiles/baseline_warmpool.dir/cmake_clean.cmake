file(REMOVE_RECURSE
  "CMakeFiles/baseline_warmpool.dir/baseline_warmpool.cpp.o"
  "CMakeFiles/baseline_warmpool.dir/baseline_warmpool.cpp.o.d"
  "baseline_warmpool"
  "baseline_warmpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_warmpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
