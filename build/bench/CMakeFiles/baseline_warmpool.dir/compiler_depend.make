# Empty compiler generated dependencies file for baseline_warmpool.
# This may be replaced when dependencies are built.
