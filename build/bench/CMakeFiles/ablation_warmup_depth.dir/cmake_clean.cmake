file(REMOVE_RECURSE
  "CMakeFiles/ablation_warmup_depth.dir/ablation_warmup_depth.cpp.o"
  "CMakeFiles/ablation_warmup_depth.dir/ablation_warmup_depth.cpp.o.d"
  "ablation_warmup_depth"
  "ablation_warmup_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warmup_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
