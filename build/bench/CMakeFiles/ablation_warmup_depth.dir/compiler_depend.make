# Empty compiler generated dependencies file for ablation_warmup_depth.
# This may be replaced when dependencies are built.
