file(REMOVE_RECURSE
  "CMakeFiles/ablation_restore_cost.dir/ablation_restore_cost.cpp.o"
  "CMakeFiles/ablation_restore_cost.dir/ablation_restore_cost.cpp.o.d"
  "ablation_restore_cost"
  "ablation_restore_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_restore_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
