# Empty compiler generated dependencies file for ablation_restore_cost.
# This may be replaced when dependencies are built.
