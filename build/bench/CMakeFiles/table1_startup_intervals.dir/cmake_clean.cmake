file(REMOVE_RECURSE
  "CMakeFiles/table1_startup_intervals.dir/table1_startup_intervals.cpp.o"
  "CMakeFiles/table1_startup_intervals.dir/table1_startup_intervals.cpp.o.d"
  "table1_startup_intervals"
  "table1_startup_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_startup_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
