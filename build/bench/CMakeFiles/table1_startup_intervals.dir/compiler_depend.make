# Empty compiler generated dependencies file for table1_startup_intervals.
# This may be replaced when dependencies are built.
