# Empty dependencies file for fig6_warmup_speedup.
# This may be replaced when dependencies are built.
