# Empty compiler generated dependencies file for baseline_related_work.
# This may be replaced when dependencies are built.
