file(REMOVE_RECURSE
  "CMakeFiles/baseline_related_work.dir/baseline_related_work.cpp.o"
  "CMakeFiles/baseline_related_work.dir/baseline_related_work.cpp.o.d"
  "baseline_related_work"
  "baseline_related_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
