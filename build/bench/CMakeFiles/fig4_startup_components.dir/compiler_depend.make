# Empty compiler generated dependencies file for fig4_startup_components.
# This may be replaced when dependencies are built.
