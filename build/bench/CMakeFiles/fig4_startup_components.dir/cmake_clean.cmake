file(REMOVE_RECURSE
  "CMakeFiles/fig4_startup_components.dir/fig4_startup_components.cpp.o"
  "CMakeFiles/fig4_startup_components.dir/fig4_startup_components.cpp.o.d"
  "fig4_startup_components"
  "fig4_startup_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_startup_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
