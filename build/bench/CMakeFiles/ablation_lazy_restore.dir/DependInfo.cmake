
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_lazy_restore.cpp" "bench/CMakeFiles/ablation_lazy_restore.dir/ablation_lazy_restore.cpp.o" "gcc" "bench/CMakeFiles/ablation_lazy_restore.dir/ablation_lazy_restore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/prebake_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/openfaas/CMakeFiles/prebake_openfaas.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/prebake_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prebake_core.dir/DependInfo.cmake"
  "/root/repo/build/src/criu/CMakeFiles/prebake_criu.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/prebake_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/prebake_os.dir/DependInfo.cmake"
  "/root/repo/build/src/funcs/CMakeFiles/prebake_funcs.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/prebake_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prebake_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
