# Empty dependencies file for ablation_lazy_restore.
# This may be replaced when dependencies are built.
