file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazy_restore.dir/ablation_lazy_restore.cpp.o"
  "CMakeFiles/ablation_lazy_restore.dir/ablation_lazy_restore.cpp.o.d"
  "ablation_lazy_restore"
  "ablation_lazy_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazy_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
