# Empty dependencies file for fig7_service_time_ecdf.
# This may be replaced when dependencies are built.
