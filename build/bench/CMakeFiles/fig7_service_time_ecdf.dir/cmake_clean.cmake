file(REMOVE_RECURSE
  "CMakeFiles/fig7_service_time_ecdf.dir/fig7_service_time_ecdf.cpp.o"
  "CMakeFiles/fig7_service_time_ecdf.dir/fig7_service_time_ecdf.cpp.o.d"
  "fig7_service_time_ecdf"
  "fig7_service_time_ecdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_service_time_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
