file(REMOVE_RECURSE
  "CMakeFiles/fig3_startup_comparison.dir/fig3_startup_comparison.cpp.o"
  "CMakeFiles/fig3_startup_comparison.dir/fig3_startup_comparison.cpp.o.d"
  "fig3_startup_comparison"
  "fig3_startup_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_startup_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
