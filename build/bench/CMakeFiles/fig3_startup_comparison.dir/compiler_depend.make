# Empty compiler generated dependencies file for fig3_startup_comparison.
# This may be replaced when dependencies are built.
