# Empty compiler generated dependencies file for autoscale_burst.
# This may be replaced when dependencies are built.
