file(REMOVE_RECURSE
  "CMakeFiles/autoscale_burst.dir/autoscale_burst.cpp.o"
  "CMakeFiles/autoscale_burst.dir/autoscale_burst.cpp.o.d"
  "autoscale_burst"
  "autoscale_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
