# Empty compiler generated dependencies file for openfaas_deploy.
# This may be replaced when dependencies are built.
