file(REMOVE_RECURSE
  "CMakeFiles/openfaas_deploy.dir/openfaas_deploy.cpp.o"
  "CMakeFiles/openfaas_deploy.dir/openfaas_deploy.cpp.o.d"
  "openfaas_deploy"
  "openfaas_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openfaas_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
