
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_space.cpp" "tests/CMakeFiles/prebake_tests.dir/test_address_space.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_address_space.cpp.o.d"
  "/root/repo/tests/test_bootstrap.cpp" "tests/CMakeFiles/prebake_tests.dir/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_bootstrap.cpp.o.d"
  "/root/repo/tests/test_builder.cpp" "tests/CMakeFiles/prebake_tests.dir/test_builder.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_builder.cpp.o.d"
  "/root/repo/tests/test_classfile.cpp" "tests/CMakeFiles/prebake_tests.dir/test_classfile.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_classfile.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/prebake_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_container.cpp" "tests/CMakeFiles/prebake_tests.dir/test_container.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_container.cpp.o.d"
  "/root/repo/tests/test_dedup.cpp" "tests/CMakeFiles/prebake_tests.dir/test_dedup.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_dedup.cpp.o.d"
  "/root/repo/tests/test_dump_restore.cpp" "tests/CMakeFiles/prebake_tests.dir/test_dump_restore.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_dump_restore.cpp.o.d"
  "/root/repo/tests/test_ecdf.cpp" "tests/CMakeFiles/prebake_tests.dir/test_ecdf.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_ecdf.cpp.o.d"
  "/root/repo/tests/test_factorial.cpp" "tests/CMakeFiles/prebake_tests.dir/test_factorial.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_factorial.cpp.o.d"
  "/root/repo/tests/test_filesystem.cpp" "tests/CMakeFiles/prebake_tests.dir/test_filesystem.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_filesystem.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/prebake_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_handlers.cpp" "tests/CMakeFiles/prebake_tests.dir/test_handlers.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_handlers.cpp.o.d"
  "/root/repo/tests/test_http_codec.cpp" "tests/CMakeFiles/prebake_tests.dir/test_http_codec.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_http_codec.cpp.o.d"
  "/root/repo/tests/test_image.cpp" "tests/CMakeFiles/prebake_tests.dir/test_image.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_image.cpp.o.d"
  "/root/repo/tests/test_image_format.cpp" "tests/CMakeFiles/prebake_tests.dir/test_image_format.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_image_format.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/prebake_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/prebake_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_mann_whitney.cpp" "tests/CMakeFiles/prebake_tests.dir/test_mann_whitney.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_mann_whitney.cpp.o.d"
  "/root/repo/tests/test_markdown.cpp" "tests/CMakeFiles/prebake_tests.dir/test_markdown.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_markdown.cpp.o.d"
  "/root/repo/tests/test_openfaas.cpp" "tests/CMakeFiles/prebake_tests.dir/test_openfaas.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_openfaas.cpp.o.d"
  "/root/repo/tests/test_page_source.cpp" "tests/CMakeFiles/prebake_tests.dir/test_page_source.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_page_source.cpp.o.d"
  "/root/repo/tests/test_platform.cpp" "tests/CMakeFiles/prebake_tests.dir/test_platform.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_platform.cpp.o.d"
  "/root/repo/tests/test_prebaker.cpp" "tests/CMakeFiles/prebake_tests.dir/test_prebaker.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_prebaker.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/prebake_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/prebake_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_reproduction.cpp" "tests/CMakeFiles/prebake_tests.dir/test_reproduction.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_reproduction.cpp.o.d"
  "/root/repo/tests/test_resource_manager.cpp" "tests/CMakeFiles/prebake_tests.dir/test_resource_manager.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_resource_manager.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/prebake_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/prebake_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_runtime_profiles.cpp" "tests/CMakeFiles/prebake_tests.dir/test_runtime_profiles.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_runtime_profiles.cpp.o.d"
  "/root/repo/tests/test_shapiro_wilk.cpp" "tests/CMakeFiles/prebake_tests.dir/test_shapiro_wilk.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_shapiro_wilk.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/prebake_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_startup.cpp" "tests/CMakeFiles/prebake_tests.dir/test_startup.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_startup.cpp.o.d"
  "/root/repo/tests/test_stats_descriptive.cpp" "tests/CMakeFiles/prebake_tests.dir/test_stats_descriptive.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_stats_descriptive.cpp.o.d"
  "/root/repo/tests/test_stats_normal.cpp" "tests/CMakeFiles/prebake_tests.dir/test_stats_normal.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_stats_normal.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/prebake_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/prebake_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/prebake_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_wire.cpp.o.d"
  "/root/repo/tests/test_workflow.cpp" "tests/CMakeFiles/prebake_tests.dir/test_workflow.cpp.o" "gcc" "tests/CMakeFiles/prebake_tests.dir/test_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/prebake_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/openfaas/CMakeFiles/prebake_openfaas.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/prebake_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prebake_core.dir/DependInfo.cmake"
  "/root/repo/build/src/criu/CMakeFiles/prebake_criu.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/prebake_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/prebake_os.dir/DependInfo.cmake"
  "/root/repo/build/src/funcs/CMakeFiles/prebake_funcs.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/prebake_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prebake_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
