# Empty dependencies file for prebake_tests.
# This may be replaced when dependencies are built.
