# Empty dependencies file for prebakectl.
# This may be replaced when dependencies are built.
