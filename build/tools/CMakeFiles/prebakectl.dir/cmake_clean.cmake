file(REMOVE_RECURSE
  "CMakeFiles/prebakectl.dir/prebakectl.cpp.o"
  "CMakeFiles/prebakectl.dir/prebakectl.cpp.o.d"
  "prebakectl"
  "prebakectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prebakectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
